//! The 50 vulnerable plugins of Table IV, with the attack-type mix of
//! Table I (15 union-based, 17 standard-blind, 14 double-blind, 4
//! tautology).
//!
//! Each plugin is generated from one of a handful of *vulnerability
//! shapes* observed in the real plugins (numeric `WHERE` concatenation,
//! quoted `LIKE` search with `stripslashes`, base64-decoded tracking
//! parameters, silent counters, boolean result pages). Every plugin gets
//! its own table seeded with visible rows plus one `HIDDEN-<slug>` row;
//! union exploits instead leak `wp_users.user_pass`
//! ([`crate::wordpress::SECRET_PASSWORD`]). Exploits are *working*
//! exploits: `crate::verify` runs them against the unprotected server and
//! checks the observable effect.

use joza_db::{Database, Value};

/// Attack-type taxonomy of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackType {
    /// Replace the query's result with attacker-chosen rows.
    UnionBased,
    /// Boolean-observable differential (found / not found).
    StandardBlind,
    /// Timing-observable differential (`SLEEP`).
    DoubleBlind,
    /// `1 OR 1=1`-style predicate subversion.
    Tautology,
}

impl std::fmt::Display for AttackType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AttackType::UnionBased => "Union Based",
            AttackType::StandardBlind => "Standard Blind",
            AttackType::DoubleBlind => "Double Blind",
            AttackType::Tautology => "Tautology",
        };
        f.write_str(s)
    }
}

/// A working exploit with its verification recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exploit {
    /// Response must contain `leak_marker`; the benign response must not.
    Leak {
        /// The attack value for the vulnerable parameter.
        payload: String,
        /// Secret text that only an attack can surface.
        leak_marker: String,
    },
    /// Responses for the two payloads must differ.
    BooleanDiff {
        /// Condition-true payload.
        true_payload: String,
        /// Condition-false payload.
        false_payload: String,
    },
    /// Virtual DB time must differ by at least `min_delay_ms`.
    TimingDiff {
        /// Payload that triggers `SLEEP`.
        slow_payload: String,
        /// Payload that does not.
        fast_payload: String,
        /// Minimum observable delay.
        min_delay_ms: u64,
    },
}

impl Exploit {
    /// The payload recorded in the paper's tables (the attack form).
    pub fn primary_payload(&self) -> &str {
        match self {
            Exploit::Leak { payload, .. } => payload,
            Exploit::BooleanDiff { true_payload, .. } => true_payload,
            Exploit::TimingDiff { slow_payload, .. } => slow_payload,
        }
    }
}

/// One vulnerable plugin of the testbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VulnPlugin {
    /// Display name (Table IV).
    pub name: String,
    /// Route slug.
    pub slug: String,
    /// Version (Table IV).
    pub version: String,
    /// CVE/OSVDB identifier, empty when the table lists none.
    pub cve: String,
    /// Attack classification (Table I).
    pub attack_type: AttackType,
    /// The vulnerable parameter name.
    pub param: String,
    /// Whether the vulnerable parameter travels by POST.
    pub via_post: bool,
    /// PHP-subset source.
    pub source: String,
    /// A benign value for the parameter.
    pub benign_value: String,
    /// The working exploit.
    pub exploit: Exploit,
    /// The plugin's private table name.
    pub table: String,
    /// Whether the exploit payload travels as a PHP *array key*
    /// (`param[PAYLOAD]=…`) rather than a parameter value — the Drupal
    /// CVE-2014-3704 delivery channel.
    pub payload_in_array_key: bool,
}

impl VulnPlugin {
    /// Creates and seeds this plugin's tables.
    pub fn setup_tables(&self, db: &mut Database) {
        if self.table.is_empty() {
            return;
        }
        db.create_table(&self.table, &["id", "cat", "name", "info", "hidden"]);
        for i in 1..=5i64 {
            db.insert_row(
                &self.table,
                vec![
                    Value::Int(i),
                    Value::Int(1 + (i % 2)),
                    format!("{}-item-{i}", self.slug).into(),
                    format!("info about item {i}").into(),
                    Value::Int(0),
                ],
            );
        }
        db.insert_row(
            &self.table,
            vec![
                Value::Int(99),
                Value::Int(9),
                format!("HIDDEN-{}", self.slug).into(),
                "private".into(),
                Value::Int(1),
            ],
        );
    }

    /// The marker a tautology against this plugin's table can leak.
    pub fn hidden_marker(&self) -> String {
        format!("HIDDEN-{}", self.slug)
    }

    /// Whether this plugin base64-decodes its vulnerable parameter before
    /// use (detected from the benign value shape). Attack tooling must
    /// mutate *inside* the encoding envelope.
    pub fn decodes_base64(&self) -> bool {
        joza_phpsim::builtins::base64_decode(&self.benign_value)
            .is_some_and(|d| !d.is_empty() && d.parse::<i64>().is_ok())
            && self.benign_value.len().is_multiple_of(4)
            && self.benign_value.len() >= 4
    }
}

fn slugify(name: &str) -> String {
    name.to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect::<String>()
        .split('-')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("-")
}

/// Vulnerability shapes instantiated across the corpus.
enum Shape {
    /// `WHERE id=<input>` numeric concatenation; dumps k columns.
    UnionNumeric { cols: usize },
    /// Quoted `LIKE '%<input>%'` search with `stripslashes`.
    UnionQuotedSearch,
    /// Boolean page: "found" / "none".
    BlindBoolean,
    /// Boolean page over a quoted, `stripslashes`d parameter.
    BlindBooleanQuoted,
    /// Silent counter: output never varies; only time does.
    DoubleBlindSilent,
    /// Row listing subvertible by `OR 1=1`.
    TautologyListing,
    /// Base64-decoded tracking parameter into a numeric context (the one
    /// original exploit NTI misses, per Table II/IV).
    TautologyBase64,
}

fn make(name: &str, version: &str, cve: &str, shape: Shape, idx: usize) -> VulnPlugin {
    let slug = slugify(name);
    let table = format!("p{idx}_{}", slug.replace('-', "_"));
    let secret_leak = crate::wordpress::SECRET_PASSWORD.to_string();
    match shape {
        Shape::UnionNumeric { cols } => {
            let (collist, union_sel) = match cols {
                1 => ("name", "user_pass".to_string()),
                2 => ("name, info", "user_login, user_pass".to_string()),
                _ => ("id, name, info", "NULL, user_login, user_pass".to_string()),
            };
            let echoes = (0..cols.clamp(1, 3))
                .map(|i| format!("$row[{i}]"))
                .collect::<Vec<_>>()
                .join(", \" \", ");
            let source = format!(
                r#"
                $id = $_GET['item'];
                $r = mysql_query("SELECT {collist} FROM {table} WHERE id=" . $id . " AND hidden=0");
                if ($r) {{
                    while ($row = mysql_fetch_row($r)) {{ echo "<li>", {echoes}, "</li>"; }}
                }} else {{
                    echo "db error: ", mysql_error();
                }}
                "#
            );
            VulnPlugin {
                name: name.into(),
                slug,
                version: version.into(),
                cve: cve.into(),
                attack_type: AttackType::UnionBased,
                param: "item".into(),
                via_post: false,
                source,
                benign_value: "2".into(),
                exploit: Exploit::Leak {
                    payload: format!("-1 UNION SELECT {union_sel} FROM wp_users-- -"),
                    leak_marker: secret_leak,
                },
                table,
                payload_in_array_key: false,
            }
        }
        Shape::UnionQuotedSearch => {
            let source = format!(
                r#"
                $s = trim(stripslashes($_GET['q']));
                $r = mysql_query("SELECT name, info FROM {table} WHERE hidden=0 AND name LIKE '%" . $s . "%' ORDER BY id");
                if ($r) {{
                    while ($row = mysql_fetch_row($r)) {{ echo "<li>", $row[0], " ", $row[1], "</li>"; }}
                }} else {{
                    echo "db error: ", mysql_error();
                }}
                "#
            );
            VulnPlugin {
                name: name.into(),
                slug,
                version: version.into(),
                cve: cve.into(),
                attack_type: AttackType::UnionBased,
                param: "q".into(),
                via_post: false,
                source,
                benign_value: "item".into(),
                exploit: Exploit::Leak {
                    payload: "zzz%' UNION SELECT user_login, user_pass FROM wp_users-- -".into(),
                    leak_marker: secret_leak,
                },
                table,
                payload_in_array_key: false,
            }
        }
        Shape::BlindBoolean => {
            let source = format!(
                r#"
                $id = $_GET['id'];
                $r = mysql_query("SELECT name FROM {table} WHERE hidden=0 AND id=" . $id);
                if ($r && mysql_num_rows($r) > 0) {{ echo "found"; }} else {{ echo "none"; }}
                "#
            );
            VulnPlugin {
                name: name.into(),
                slug,
                version: version.into(),
                cve: cve.into(),
                attack_type: AttackType::StandardBlind,
                param: "id".into(),
                via_post: false,
                source,
                benign_value: "2".into(),
                exploit: Exploit::BooleanDiff {
                    true_payload: "2 AND 1=1".into(),
                    false_payload: "2 AND 1=0".into(),
                },
                table,
                payload_in_array_key: false,
            }
        }
        Shape::BlindBooleanQuoted => {
            let source = format!(
                r#"
                $n = trim(stripslashes($_GET['name']));
                $r = mysql_query("SELECT id FROM {table} WHERE hidden=0 AND name='" . $n . "'");
                if ($r && mysql_num_rows($r) > 0) {{ echo "exists"; }} else {{ echo "missing"; }}
                "#
            );
            let item = format!("{}-item-1", slugify(name));
            VulnPlugin {
                name: name.into(),
                slug,
                version: version.into(),
                cve: cve.into(),
                attack_type: AttackType::StandardBlind,
                param: "name".into(),
                via_post: false,
                source,
                benign_value: item.clone(),
                exploit: Exploit::BooleanDiff {
                    true_payload: format!(
                        "{item}' AND ASCII(SUBSTRING((SELECT user_pass FROM wp_users WHERE ID=1),1,1))>32 AND 'a'='a"
                    ),
                    false_payload: format!(
                        "{item}' AND ASCII(SUBSTRING((SELECT user_pass FROM wp_users WHERE ID=1),1,1))>200 AND 'a'='a"
                    ),
                },
                table,
                payload_in_array_key: false,
            }
        }
        Shape::DoubleBlindSilent => {
            let source = format!(
                r#"
                $id = $_GET['track'];
                $r = mysql_query("SELECT COUNT(*) FROM {table} WHERE hidden=0 AND id=" . $id);
                echo "OK";
                "#
            );
            VulnPlugin {
                name: name.into(),
                slug,
                version: version.into(),
                cve: cve.into(),
                attack_type: AttackType::DoubleBlind,
                param: "track".into(),
                via_post: false,
                source,
                benign_value: "1".into(),
                exploit: Exploit::TimingDiff {
                    slow_payload:
                        "1 AND IF(ASCII(SUBSTRING((SELECT user_pass FROM wp_users WHERE ID=1),1,1))>32,SLEEP(2),0)"
                            .into(),
                    fast_payload:
                        "1 AND IF(ASCII(SUBSTRING((SELECT user_pass FROM wp_users WHERE ID=1),1,1))>200,SLEEP(2),0)"
                            .into(),
                    min_delay_ms: 1500,
                },
                table,
                payload_in_array_key: false,
            }
        }
        Shape::TautologyListing => {
            let source = format!(
                r#"
                $cat = $_GET['cat'];
                $r = mysql_query("SELECT name, info FROM {table} WHERE hidden=0 AND cat=" . $cat);
                if ($r) {{
                    while ($row = mysql_fetch_assoc($r)) {{ echo "<li>", $row['name'], "</li>"; }}
                }} else {{
                    echo "db error: ", mysql_error();
                }}
                "#
            );
            let marker = format!("HIDDEN-{}", slugify(name));
            VulnPlugin {
                name: name.into(),
                slug,
                version: version.into(),
                cve: cve.into(),
                attack_type: AttackType::Tautology,
                param: "cat".into(),
                via_post: false,
                source,
                benign_value: "1".into(),
                exploit: Exploit::Leak { payload: "1 OR 1=1".into(), leak_marker: marker },
                table,
                payload_in_array_key: false,
            }
        }
        Shape::TautologyBase64 => {
            let source = format!(
                r#"
                $raw = $_GET['track'];
                $data = base64_decode($raw);
                $r = mysql_query("SELECT name, info FROM {table} WHERE hidden=0 AND cat=" . $data);
                if ($r) {{
                    while ($row = mysql_fetch_assoc($r)) {{ echo "<li>", $row['name'], "</li>"; }}
                }} else {{
                    echo "tracked";
                }}
                "#
            );
            let marker = format!("HIDDEN-{}", slugify(name));
            VulnPlugin {
                name: name.into(),
                slug,
                version: version.into(),
                cve: cve.into(),
                attack_type: AttackType::Tautology,
                param: "track".into(),
                via_post: false,
                source,
                // base64("1") — benign category id.
                benign_value: "MQ==".into(),
                exploit: Exploit::Leak {
                    // base64("1 OR 1=1")
                    payload: "MSBPUiAxPTE=".into(),
                    leak_marker: marker,
                },
                table,
                payload_in_array_key: false,
            }
        }
    }
}

/// Builds the 50-plugin corpus with Table I's attack-type distribution and
/// Table IV's plugin names.
pub fn corpus() -> Vec<VulnPlugin> {
    use Shape::*;
    // (name, version, cve, shape). Distribution: 15 union (10 numeric of
    // varying width + 5 quoted-search), 17 standard blind (13 numeric + 4
    // quoted), 14 double blind, 4 tautology (3 listing + 1 base64 —
    // AdRotate, the NTI miss).
    let spec: Vec<(&str, &str, &str, Shape)> = vec![
        // --- Tautology (4) ---
        ("A to Z Category Listing", "1.3", "OSVDB-86069", TautologyListing),
        ("AdRotate", "3.6.6", "CVE-2011-4671", TautologyBase64),
        ("Community Events", "1.2.1", "OSVDB-74573", TautologyListing),
        ("WP eCommerce", "3.8.6", "OSVDB-75590", TautologyListing),
        // --- Union based (15) ---
        ("Allow PHP in posts and pages", "2.0.0", "OSVDB-75252", UnionNumeric { cols: 1 }),
        ("Contus HD FLV Player", "1.3", "", UnionNumeric { cols: 2 }),
        ("Count per Day", "2.17", "OSVDB-75598", UnionNumeric { cols: 3 }),
        ("Event Registration plugin", "5.43", "", UnionNumeric { cols: 2 }),
        ("Eventify", "1.7.1", "OSVDB-86245", UnionNumeric { cols: 1 }),
        ("File Groups", "1.1.2", "OSVDB-74572", UnionNumeric { cols: 2 }),
        ("IP-Logger", "3.0", "", UnionNumeric { cols: 3 }),
        ("Link Library", "5.2.1", "OSVDB-84579", UnionQuotedSearch),
        ("OdiHost Newsletter", "1.0", "OSVDB-74575", UnionNumeric { cols: 2 }),
        ("post highlights", "2.2", "", UnionQuotedSearch),
        ("ProPlayer", "4.7.7", "", UnionNumeric { cols: 1 }),
        ("SH Slideshow", "3.1.4", "OSVDB-74813", UnionQuotedSearch),
        ("Social Slider", "5.6.5", "OSVDB-74421", UnionNumeric { cols: 2 }),
        ("WP Forum Server", "1.7.8", "CVE-2012-6625", UnionQuotedSearch),
        ("Zotpress", "4.4", "", UnionQuotedSearch),
        // --- Standard blind (17) ---
        ("Easy Contact Form Lite", "1.0.7", "", BlindBoolean),
        ("FireStorm Real Estate Plugin", "2.06", "", BlindBoolean),
        ("GD Star Rating", "1.9.10", "OSVDB-83466", BlindBoolean),
        ("iCopyright", "1.1.4", "", BlindBoolean),
        ("KNR Author List Widget", "2.0.0", "", BlindBoolean),
        ("MM Duplicate", "1.2", "", BlindBoolean),
        ("Profiles", "2.0.RC1", "", BlindBoolean),
        ("SearchAutocomplete", "1.0.8", "", BlindBoolean),
        ("UMP Polls", "1.0.3", "", BlindBoolean),
        ("VideoWhisper Video Presentation", "1.1", "", BlindBoolean),
        ("Facebook Opengraph Meta", "1.0", "", BlindBoolean),
        ("Paypal Donation Plugin", "0.12", "", BlindBoolean),
        ("WP Audio Gallery Playlist", "0.11", "", BlindBoolean),
        ("WP Bannerize", "2.8.7", "OSVDB-76658", BlindBooleanQuoted),
        ("WP FileBase", "0.2.9", "OSVDB-75308", BlindBooleanQuoted),
        ("WP Menu Creator", "1.1.7", "OSVDB-74578", BlindBooleanQuoted),
        ("yolink Search", "1.1.4", "OSVDB-74832", BlindBooleanQuoted),
        // --- Double blind (14) ---
        ("Advertiser", "1.0", "", DoubleBlindSilent),
        ("Ajax Gallery", "3.0", "", DoubleBlindSilent),
        ("Couponer", "1.2", "", DoubleBlindSilent),
        ("Crawl Rate Tracker", "2.02", "", DoubleBlindSilent),
        ("Facebook Promotions", "1.3.3", "", DoubleBlindSilent),
        ("Global Content Blocks", "1.2", "OSVDB-74577", DoubleBlindSilent),
        ("Js-appointment", "1.5", "OSVDB-74804", DoubleBlindSilent),
        ("Media Library Categories", "1.0.6", "", DoubleBlindSilent),
        ("Mingle Forum", "1.0.31", "OSVDB-75791", DoubleBlindSilent),
        ("MyStat", "2.6", "", DoubleBlindSilent),
        ("Paid Downloads", "2.01", "OSVDB-86247", DoubleBlindSilent),
        ("PureHTML", "1.0.0", "", DoubleBlindSilent),
        ("SCORM Cloud", "1.0.6.6", "OSVDB-74804", DoubleBlindSilent),
        ("WP DS FAQ", "1.3.2", "OSVDB-74574", DoubleBlindSilent),
    ];
    spec.into_iter()
        .enumerate()
        .map(|(i, (name, version, cve, shape))| make(name, version, cve, shape, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_phpsim::parser::parse_program;

    #[test]
    fn corpus_has_50_unique_plugins() {
        let c = corpus();
        assert_eq!(c.len(), 50);
        let mut slugs: Vec<&str> = c.iter().map(|p| p.slug.as_str()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 50, "duplicate slugs");
        let mut tables: Vec<&str> = c.iter().map(|p| p.table.as_str()).collect();
        tables.sort_unstable();
        tables.dedup();
        assert_eq!(tables.len(), 50, "duplicate tables");
    }

    #[test]
    fn every_source_parses() {
        for p in corpus() {
            assert!(parse_program(&p.source).is_ok(), "plugin {} source fails to parse", p.name);
        }
    }

    #[test]
    fn setup_tables_seeds_hidden_row() {
        let mut db = Database::new();
        let p = &corpus()[0];
        p.setup_tables(&mut db);
        let t = db.table(&p.table).unwrap();
        assert_eq!(t.len(), 6);
        let hidden = t.rows().iter().filter(|r| r[4] == Value::Int(1)).count();
        assert_eq!(hidden, 1);
    }

    #[test]
    fn slugify_behaviour() {
        assert_eq!(slugify("A to Z Category Listing"), "a-to-z-category-listing");
        assert_eq!(slugify("Js-appointment"), "js-appointment");
        assert_eq!(slugify("WP eCommerce"), "wp-ecommerce");
    }

    #[test]
    fn primary_payloads_nonempty() {
        for p in corpus() {
            assert!(!p.exploit.primary_payload().is_empty(), "{}", p.name);
        }
    }
}
