//! The Joomla / Drupal / osCommerce case studies (§V-B).
//!
//! "PTI or NTI were not sufficient to detect all three of these attacks on
//! popular highly scrutinized web applications, but Joza successfully
//! detected and prevented them."
//!
//! * **Drupal** (CVE-2014-3704): user input used to construct *placeholder
//!   names* of a prepared statement — prepared statements are not a
//!   panacea. Modelled as an `IN (…)` list whose text comes from the
//!   expanded argument keys.
//! * **Joomla** (CVE-2013-1453): encoded input instantiates an object
//!   whose member variables build a query. Modelled as a base64-decoded
//!   "member variable" interpolated into the query.
//! * **osCommerce** (`geo_zones.php`, `zid`): a tautology that extracts
//!   sensitive information.

use crate::corpus::{AttackType, Exploit, VulnPlugin};

/// Builds the three CMS cases.
pub fn cms_cases() -> Vec<VulnPlugin> {
    let drupal = VulnPlugin {
        name: "Drupal".into(),
        slug: "drupal-core".into(),
        version: "7.31".into(),
        cve: "CVE-2014-3704".into(),
        attack_type: AttackType::UnionBased,
        param: "ids".into(),
        via_post: false,
        // A genuine prepared statement — values are bound, never
        // interpolated. The hole is `db_query`'s expandArguments (the
        // Drupal 7 database layer): the `:ids` placeholder expands to one
        // placeholder per array element with names built from the *array
        // keys*, so an attacker-chosen key edits the statement text sent
        // to be prepared. "Prepared statements are not a panacea" (§V-B).
        source: r#"
            $ids = $_GET['ids'];
            $r = db_query("SELECT name, info FROM cms_drupal_nodes WHERE hidden=0 AND id IN (:ids)", array(':ids' => $ids));
            if ($r) {
                while ($row = mysql_fetch_row($r)) { echo "<li>", $row[0], "</li>"; }
            } else {
                echo "db error: ", mysql_error();
            }
            "#
        .into(),
        benign_value: "1".into(),
        exploit: Exploit::Leak {
            // Travels as the second array *key*: `ids[0]=…&ids[KEY]=…`.
            payload: "0) UNION SELECT user_pass, user_login FROM wp_users-- -".into(),
            leak_marker: crate::wordpress::SECRET_PASSWORD.into(),
        },
        table: "cms_drupal_nodes".into(),
        payload_in_array_key: true,
    };

    let joomla = VulnPlugin {
        name: "Joomla".into(),
        slug: "joomla-core".into(),
        version: "3.0.1".into(),
        cve: "CVE-2013-1453".into(),
        attack_type: AttackType::UnionBased,
        param: "list".into(),
        via_post: false,
        source: r#"
            // Joomla-style: an encoded blob is decoded into an object whose
            // member variable ends up in the query on destruction.
            $blob = $_GET['list'];
            $member = base64_decode($blob);
            $q = "SELECT name, info FROM cms_joomla_content WHERE hidden=0 AND cat=" . $member;
            $r = mysql_query($q);
            if ($r) {
                while ($row = mysql_fetch_row($r)) { echo "<li>", $row[0], "</li>"; }
            } else {
                echo "db error: ", mysql_error();
            }
            "#
        .into(),
        // base64("1")
        benign_value: "MQ==".into(),
        exploit: Exploit::Leak {
            // base64("-1 UNION SELECT user_pass, user_login FROM wp_users")
            payload: "LTEgVU5JT04gU0VMRUNUIHVzZXJfcGFzcywgdXNlcl9sb2dpbiBGUk9NIHdwX3VzZXJz".into(),
            leak_marker: crate::wordpress::SECRET_PASSWORD.into(),
        },
        table: "cms_joomla_content".into(),
        payload_in_array_key: false,
    };

    let oscommerce = VulnPlugin {
        name: "osCommerce".into(),
        slug: "oscommerce-geo-zones".into(),
        version: "2.3.3.4".into(),
        cve: "OSVDB-103365".into(),
        attack_type: AttackType::Tautology,
        param: "zid".into(),
        via_post: false,
        source: r#"
            // geo_zones.php: the zone id is concatenated unfiltered.
            $zid = $_GET['zid'];
            $q = "SELECT name, info FROM cms_osc_geo_zones WHERE hidden=0 AND cat=" . $zid;
            $r = mysql_query($q);
            if ($r) {
                while ($row = mysql_fetch_assoc($r)) { echo "<li>", $row['name'], "</li>"; }
            } else {
                echo "db error: ", mysql_error();
            }
            "#
        .into(),
        benign_value: "1".into(),
        exploit: Exploit::Leak {
            payload: "1 OR 1=1".into(),
            leak_marker: "HIDDEN-oscommerce-geo-zones".into(),
        },
        table: "cms_osc_geo_zones".into(),
        payload_in_array_key: false,
    };

    vec![drupal, joomla, oscommerce]
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_phpsim::parser::parse_program;

    #[test]
    fn three_cases_parse() {
        let cases = cms_cases();
        assert_eq!(cases.len(), 3);
        for c in &cases {
            assert!(parse_program(&c.source).is_ok(), "{}", c.name);
        }
    }
}
