//! NTI-evasion mutations (§III-A, §V-A).
//!
//! "We mutated the original attacks by incorporating comment blocks that
//! included quotes. Regardless of the threshold used by NTI for
//! determining a match, an attacker can evade NTI by simply adding enough
//! quotes to ensure that the attack input is above the threshold."
//!
//! The framework applies magic quotes to every input, so each quote in
//! the raw payload gains a backslash in the query — driving the edit
//! distance, and thus the difference ratio, past any fixed threshold. The
//! alternative strategy pads the payload with whitespace that a trimming
//! application strips.

use crate::corpus::{Exploit, VulnPlugin};

/// Which input transformation the mutation exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NtiEvasionStrategy {
    /// Insert a `/*'…'*/` comment block; magic quotes inflate the edit
    /// distance by one backslash per quote.
    QuoteStuffing {
        /// Number of quotes to stuff.
        quotes: usize,
    },
    /// Append whitespace that the application trims away.
    WhitespacePadding {
        /// Number of spaces to append.
        spaces: usize,
    },
}

/// Picks a quote count that pushes the difference ratio past `threshold`
/// for a payload of the given length: `quotes / (len + block)` must exceed
/// the threshold with margin.
pub fn quotes_needed(payload_len: usize, threshold: f64) -> usize {
    // distance = quotes (one backslash each); matched length ≈ payload len
    // + comment block incl. escaped quotes (2 bytes per quote) + 4 for the
    // delimiters. Solve quotes > t·(L + 2q + 4) with 2× safety margin.
    //
    // Each stuffed quote adds 1 to the distance and 2 to the matched
    // length, so the achievable difference ratio approaches (but never
    // reaches) 0.5: quote stuffing defeats any *usable* NTI threshold —
    // thresholds at or above 0.5 mark half of everything and are already
    // unusable for false-positive reasons (§III-A). Clamp so the sizing
    // formula stays finite.
    let t = threshold.min(0.45);
    let base = (t * (payload_len as f64 + 4.0)) / (1.0 - 2.0 * t);
    ((base * 2.0).ceil() as usize).max(8)
}

fn stuff(payload: &str, quotes: usize) -> String {
    stuff_block(payload, &"'".repeat(quotes))
}

fn stuff_block(payload: &str, filler: &str) -> String {
    let block = format!("/*{filler}*/");
    // Replace the first space with the comment block (comments are
    // whitespace to SQL), or append when there is no space.
    match payload.find(' ') {
        Some(i) => format!("{}{}{}", &payload[..i], block, &payload[i + 1..]),
        None => format!("{payload}{block}"),
    }
}

/// Picks a trailing-space count for trimming applications (§III-A: "an
/// attacker can also leverage whitespace trimming … by appending an
/// arbitrary number of whitespaces"). The application removes all n
/// spaces, so the distance is ~n against a matched span of ~L and the
/// ratio n/(L + n) tends to 1. Oversize generously: trailing spaces in
/// the raw input may coincidentally align with whitespace in the query
/// text that follows the injection point.
pub fn spaces_needed(payload_len: usize, threshold: f64) -> usize {
    let t = threshold.min(0.90);
    let n = (t * (payload_len as f64 + 4.0)) / (1.0 - t);
    ((n * 3.0).ceil() as usize).max(24) + payload_len
}

fn pad(payload: &str, spaces: usize) -> String {
    format!("{payload}{}", " ".repeat(spaces))
}

/// Applies the strategy to one payload string.
pub fn mutate_payload(payload: &str, strategy: NtiEvasionStrategy) -> String {
    match strategy {
        NtiEvasionStrategy::QuoteStuffing { quotes } => stuff(payload, quotes),
        NtiEvasionStrategy::WhitespacePadding { spaces } => pad(payload, spaces),
    }
}

/// Mutates a plugin's exploit for NTI evasion, sized against `threshold`.
///
/// Strategy selection mirrors what an attacker probing the application
/// would land on: plugins that `trim` their input get whitespace padding
/// (the trim deletes every padded space, inflating the distance without
/// bound — the paper's second named channel); everything else gets the
/// paper's quote stuffing. Plugins that `stripslashes` exactly undo magic
/// quotes, so *no* escaping-based evasion can work there — for those,
/// trimming (which the same plugins do in practice) is the only channel.
///
/// For plugins that base64-decode their parameter, the stuffing happens
/// inside the encoding envelope (decode → stuff → re-encode); NTI already
/// misses those originals, but the mutated exploit must keep working.
pub fn mutate_for_nti(plugin: &VulnPlugin, threshold: f64) -> Exploit {
    let b64 = plugin.decodes_base64();
    let trims = plugin.source.contains("trim(");
    let mutate = |p: &str| {
        let raw = if b64 {
            joza_phpsim::builtins::base64_decode(p).unwrap_or_else(|| p.to_string())
        } else {
            p.to_string()
        };
        let strategy = if trims {
            NtiEvasionStrategy::WhitespacePadding { spaces: spaces_needed(raw.len(), threshold) }
        } else {
            NtiEvasionStrategy::QuoteStuffing { quotes: quotes_needed(raw.len(), threshold) }
        };
        let stuffed = mutate_payload(&raw, strategy);
        if b64 {
            joza_phpsim::builtins::base64_encode(stuffed.as_bytes())
        } else {
            stuffed
        }
    };
    match &plugin.exploit {
        Exploit::Leak { payload, leak_marker } => {
            Exploit::Leak { payload: mutate(payload), leak_marker: leak_marker.clone() }
        }
        Exploit::BooleanDiff { true_payload, false_payload } => Exploit::BooleanDiff {
            true_payload: mutate(true_payload),
            false_payload: mutate(false_payload),
        },
        Exploit::TimingDiff { slow_payload, fast_payload, min_delay_ms } => Exploit::TimingDiff {
            slow_payload: mutate(slow_payload),
            fast_payload: mutate(fast_payload),
            min_delay_ms: *min_delay_ms,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_nti::{NtiAnalyzer, NtiConfig};
    use joza_phpsim::builtins::addslashes;

    #[test]
    fn quote_stuffing_preserves_sql_validity() {
        let m = stuff("1 OR 1=1", 10);
        assert!(m.starts_with("1/*"));
        assert!(m.contains("''''''''''"));
        assert!(m.ends_with("OR 1=1"));
        // The query still parses after magic quotes.
        let q = format!("SELECT * FROM t WHERE id={}", addslashes(&m));
        assert!(joza_sqlparse::parse(&q).is_ok(), "{q}");
    }

    #[test]
    fn stuffed_payload_evades_nti() {
        let nti = NtiAnalyzer::new(NtiConfig::default());
        let raw = "1 OR 1=1";
        let stuffed = stuff(raw, quotes_needed(raw.len(), 0.20));
        let escaped = addslashes(&stuffed);
        let q = format!("SELECT name FROM items WHERE hidden=0 AND cat={escaped}");
        let report = nti.analyze(&[stuffed.as_str()], &q);
        assert!(!report.is_attack(), "{report:?}");
        // The unstuffed original is detected.
        let q0 = format!("SELECT name FROM items WHERE hidden=0 AND cat={raw}");
        assert!(nti.analyze(&[raw], &q0).is_attack());
    }

    #[test]
    fn quotes_needed_scales_with_length() {
        assert!(quotes_needed(10, 0.2) >= 8);
        assert!(quotes_needed(100, 0.2) > quotes_needed(10, 0.2));
        // Higher thresholds need more quotes.
        assert!(quotes_needed(50, 0.3) > quotes_needed(50, 0.1));
    }

    #[test]
    fn whitespace_padding_strategy() {
        let m = mutate_payload("1 OR 1=1", NtiEvasionStrategy::WhitespacePadding { spaces: 20 });
        assert_eq!(m.len(), 28);
        assert!(m.ends_with("          "));
    }

    #[test]
    fn mutate_for_nti_covers_all_exploit_kinds() {
        for p in crate::corpus::corpus().iter().take(25) {
            let m = mutate_for_nti(p, 0.20);
            let payload = if p.decodes_base64() {
                joza_phpsim::builtins::base64_decode(m.primary_payload()).unwrap()
            } else {
                m.primary_payload().to_string()
            };
            // Trimming plugins get whitespace padding; the rest get a
            // stuffed comment block.
            if p.source.contains("trim(") {
                assert!(payload.ends_with(' '), "{}: {payload:?}", p.name);
            } else {
                assert!(payload.contains("/*"), "{}: {payload}", p.name);
            }
            assert_ne!(payload, p.exploit.primary_payload(), "{}: unmutated", p.name);
        }
    }

    #[test]
    fn stripslashes_exactly_undoes_magic_quotes() {
        // addslashes → stripslashes is an identity, so escaping-based NTI
        // evasion is impossible against stripslashes plugins; only the
        // trim channel works there. This pins the identity down.
        use joza_phpsim::builtins::stripslashes;
        for raw in ["1 OR 1=1", "a\\'b", "/*''''*/", "back\\\\slash"] {
            assert_eq!(stripslashes(&addslashes(raw)), raw);
        }
    }

    #[test]
    fn whitespace_padding_evades_nti_in_trimming_context() {
        let nti = NtiAnalyzer::new(NtiConfig::default());
        let raw_payload = "zzz%' UNION SELECT user_login, user_pass FROM wp_users-- -";
        let padded = pad(raw_payload, spaces_needed(raw_payload.len(), 0.20));
        // The application trims, so the query sees the unpadded payload.
        let q = format!(
            "SELECT name FROM items WHERE hidden=0 AND name LIKE '%{raw_payload}%' ORDER BY id"
        );
        let report = nti.analyze(&[padded.as_str()], &q);
        assert!(!report.is_attack(), "{report:?}");
        // Unpadded, NTI detects it.
        assert!(nti.analyze(&[raw_payload], &q).is_attack());
    }
}
