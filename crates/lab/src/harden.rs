//! Differential verification of the static hardening pass.
//!
//! `joza_sast::harden_app` rewrites every completely-modeled route into
//! prepared-statement form. A source rewrite earns no trust from its
//! construction alone — this module *runs* both applications side by
//! side and demands:
//!
//! * **benign fidelity** — over the benign request corpus (every core
//!   route plus every plugin's benign request), the original and the
//!   hardened application produce bit-identical response bodies, the
//!   same SQL-error visibility, the same per-request query count, and
//!   bit-identical database state (every table rendered cell by cell);
//! * **attack neutralization** — every shipped exploit whose route was
//!   rewritten loses its observable effect (no leaked secret, no
//!   boolean differential, no timing differential) on the hardened
//!   application *with no gate installed* — the rewrite alone defeats
//!   the attack;
//! * **skeleton invariance** — on a hardened route the statement text
//!   reaching the database is a source literal; attacker bytes travel
//!   out-of-band as bound parameters and can never appear in it.
//!
//! Database states are compared on *rendered* cells (`Value` display),
//! not value identity: a prepared INSERT binds every parameter as a
//! string where the original concatenation produced a bare numeric
//! literal, and MySQL's numeric coercion makes `'2'` and `2` the same
//! value observably — `WHERE id = '2'` and `WHERE id = 2` select the
//! same rows — so Str-vs-Int storage is a representation difference,
//! not a behavioral one.

use crate::verify::{exploit_effect_observed, request_for};
use crate::{wordpress, Lab};
use joza_db::Database;
use joza_sast::{harden_app, HardenReport};
use joza_webapp::request::HttpRequest;
use joza_webapp::server::Server;

/// Builds the hardened twin of a lab: same plugin corpus and seeded
/// database, application source transformed by `joza_sast::harden_app`.
pub fn harden_lab(lab: &Lab) -> (Lab, HardenReport) {
    let (app, report) = harden_app(&lab.server.app);
    let mut db = wordpress::wordpress_database();
    for p in lab.plugins.iter().chain(lab.cms_cases.iter()) {
        p.setup_tables(&mut db);
    }
    let twin = Lab {
        server: Server::new(app, db),
        plugins: lab.plugins.clone(),
        cms_cases: lab.cms_cases.clone(),
    };
    (twin, report)
}

/// The benign request corpus: every core route exercised with realistic
/// inputs plus every plugin's benign request (same shape the gate
/// benchmarks replay).
pub fn benign_corpus(lab: &Lab) -> Vec<HttpRequest> {
    let mut reqs = vec![HttpRequest::get("index")];
    for p in 1..=5 {
        reqs.push(HttpRequest::get("single-post").param("p", &p.to_string()));
    }
    reqs.push(HttpRequest::get("search").param("s", "lorem"));
    reqs.push(
        HttpRequest::post("post-comment")
            .param("comment_post_ID", "2")
            .param("author", "alice")
            .param("comment", "nice post"),
    );
    for p in lab.plugins.iter().chain(lab.cms_cases.iter()) {
        reqs.push(request_for(p, &p.benign_value));
    }
    reqs
}

/// Renders the full database state — every table, schema and rows, cell
/// by cell — for bit-exact comparison. `NULL` renders distinctly from
/// the empty string.
pub fn dump_database(db: &Database) -> String {
    let mut out = String::new();
    for table in db.tables() {
        out.push_str(table.name());
        out.push('(');
        out.push_str(&table.columns().join(","));
        out.push_str(")\n");
        for row in table.rows() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join("|"));
            out.push('\n');
        }
    }
    out
}

/// Outcome of one differential run.
#[derive(Debug, Default)]
pub struct Differential {
    /// Benign requests replayed on both applications.
    pub benign_requests: usize,
    /// Benign requests whose response (body / error visibility / query
    /// count) diverged, with a description each.
    pub response_mismatches: Vec<String>,
    /// Benign requests after which database state diverged.
    pub db_mismatches: Vec<String>,
    /// Exploits replayed against rewritten routes of the ungated
    /// hardened application.
    pub exploits_checked: usize,
    /// Exploits whose observable effect *survived* the rewrite.
    pub exploits_surviving: Vec<String>,
}

impl Differential {
    /// True when benign traffic is bit-identical and every exploit on a
    /// rewritten route is neutralized.
    pub fn passed(&self) -> bool {
        self.response_mismatches.is_empty()
            && self.db_mismatches.is_empty()
            && self.exploits_surviving.is_empty()
    }
}

/// Replays one request on both applications from a freshly-seeded
/// database each and reports any divergence.
fn compare_request(
    original: &mut Lab,
    hardened: &mut Lab,
    req: &HttpRequest,
    out: &mut Differential,
) {
    original.reset_database();
    hardened.reset_database();
    let a = original.server.handle(req);
    let b = hardened.server.handle(req);
    out.benign_requests += 1;
    let label = format!("{} {}", if req.post.is_empty() { "GET" } else { "POST" }, req.path);
    if a.body != b.body {
        out.response_mismatches.push(format!("{label}: body diverged"));
    }
    if a.sql_error.is_some() != b.sql_error.is_some() {
        out.response_mismatches.push(format!(
            "{label}: sql error visibility diverged (orig {:?}, hardened {:?})",
            a.sql_error, b.sql_error
        ));
    }
    if a.queries.len() != b.queries.len() {
        out.response_mismatches.push(format!(
            "{label}: query count diverged ({} vs {})",
            a.queries.len(),
            b.queries.len()
        ));
    }
    if dump_database(&original.server.db) != dump_database(&hardened.server.db) {
        out.db_mismatches.push(label);
    }
}

/// Runs the full differential: benign fidelity over the corpus, then
/// exploit neutralization on every rewritten route (ungated).
pub fn differential(original: &mut Lab, hardened: &mut Lab, report: &HardenReport) -> Differential {
    let mut out = Differential::default();
    for req in benign_corpus(original) {
        compare_request(original, hardened, &req, &mut out);
    }
    let rewritten = report.rewritten_routes();
    let plugins: Vec<_> =
        original.plugins.iter().chain(original.cms_cases.iter()).cloned().collect();
    for p in &plugins {
        if !rewritten.contains(&p.slug) {
            continue;
        }
        hardened.reset_database();
        out.exploits_checked += 1;
        if exploit_effect_observed(&mut hardened.server, p, &p.exploit, None) {
            out.exploits_surviving.push(p.slug.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_lab;
    use joza_phpsim::{emit_program, parse_program};

    /// Every route source in the testbed round-trips through the emitter:
    /// `parse(emit(parse(src))) == parse(src)`. (This test lives here
    /// rather than in `joza-phpsim` because the corpus is lab data and
    /// the dependency points the other way.)
    #[test]
    fn corpus_sources_round_trip_through_emitter() {
        let lab = build_lab();
        let mut checked = 0;
        for plugin in lab.server.app.plugins() {
            let ast = parse_program(&plugin.source)
                .unwrap_or_else(|e| panic!("{}: corpus source must parse: {e:?}", plugin.name));
            let emitted = emit_program(&ast);
            let reparsed = parse_program(&emitted)
                .unwrap_or_else(|e| panic!("{}: emitted source must parse: {e:?}", plugin.name));
            assert_eq!(reparsed, ast, "{}: emitter round-trip diverged", plugin.name);
            checked += 1;
        }
        assert_eq!(checked, 57, "expected all 57 routes");
    }

    #[test]
    fn hardening_rewrites_every_completely_modeled_route() {
        let lab = build_lab();
        let (_, report) = harden_lab(&lab);
        assert_eq!(report.routes.len(), 57);
        let skipped: Vec<(&str, &str)> = report
            .routes
            .iter()
            .filter(|r| !r.rewritten())
            .map(|r| (r.route.as_str(), r.skip.unwrap().code()))
            .collect();
        assert_eq!(
            skipped,
            vec![("drupal-core", "already-prepared")],
            "exactly the model-incomplete route is skipped"
        );
        assert_eq!(report.rewritten_count(), 56);
        // Every rewritten route binds through placeholders or was fully
        // static; the corpus as a whole certainly binds many.
        let placeholders: usize = report.routes.iter().map(|r| r.placeholders).sum();
        assert!(
            placeholders >= 56,
            "corpus-wide placeholder count {placeholders} suspiciously low"
        );
    }

    #[test]
    fn benign_corpus_is_bit_identical_and_exploits_die() {
        let mut original = build_lab();
        let (mut hardened, report) = harden_lab(&original);
        let diff = differential(&mut original, &mut hardened, &report);
        assert!(diff.benign_requests >= 60);
        assert_eq!(diff.exploits_checked, 52, "50 plugins + joomla + oscommerce");
        assert!(
            diff.passed(),
            "responses: {:?}\ndb: {:?}\nexploits: {:?}",
            diff.response_mismatches,
            diff.db_mismatches,
            diff.exploits_surviving
        );
    }

    #[test]
    fn hardened_statement_text_is_payload_free() {
        let mut original = build_lab();
        let (mut hardened, report) = harden_lab(&original);
        let rewritten = report.rewritten_routes();
        let marker = "ZqJ9MARKER";
        let plugins: Vec<_> =
            original.plugins.iter().chain(original.cms_cases.iter()).cloned().collect();
        for p in &plugins {
            if !rewritten.contains(&p.slug) {
                continue;
            }
            hardened.reset_database();
            let payload = format!("{marker}' OR '1'='1");
            let resp = hardened.server.handle(&request_for(p, &payload));
            for q in &resp.queries {
                assert!(
                    !q.contains(marker),
                    "{}: attacker bytes reached statement text: {q}",
                    p.slug
                );
            }
            assert!(
                !resp.body.contains(crate::wordpress::SECRET_PASSWORD),
                "{}: hardened route leaked the secret",
                p.slug
            );
        }
        // The unrewritten Drupal route, by contrast, still interpolates
        // (its exploit channel is the statement text itself).
        original.reset_database();
        let drupal = original.cms_cases.iter().find(|c| c.slug == "drupal-core").unwrap();
        assert!(!rewritten.contains(&drupal.slug));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::build_lab;
    use crate::corpus::VulnPlugin;
    use proptest::prelude::*;
    use std::sync::{Mutex, OnceLock};

    /// The lab pair is expensive to assemble; proptest re-runs each body
    /// many times, and `reset_database` restores all mutable state, so
    /// one shared pair is sound.
    struct Rig {
        original: Lab,
        hardened: Lab,
        report: HardenReport,
        plugins: Vec<VulnPlugin>,
    }

    fn rig() -> &'static Mutex<Rig> {
        static RIG: OnceLock<Mutex<Rig>> = OnceLock::new();
        RIG.get_or_init(|| {
            let original = build_lab();
            let (hardened, report) = harden_lab(&original);
            let plugins =
                original.plugins.iter().chain(original.cms_cases.iter()).cloned().collect();
            Mutex::new(Rig { original, hardened, report, plugins })
        })
    }

    proptest! {
        /// Numeric parameter values are benign on every route (valid in
        /// both numeric and quoted SQL contexts): responses and database
        /// state must be bit-identical for any of them, on any route.
        #[test]
        fn numeric_inputs_are_bit_identical(value in 0u32..10_000, idx in 0usize..52) {
            let mut rig = rig().lock().unwrap();
            let p = rig.plugins[idx % rig.plugins.len()].clone();
            if !rig.report.rewritten_routes().contains(&p.slug) {
                continue; // drupal-core: deliberately unrewritten
            }
            let req = crate::verify::request_for(&p, &value.to_string());
            // Bit-identity is owed on inputs the original route handles
            // cleanly; an input that breaks the original's SQL (e.g. a
            // bare number into a route that base64-decodes its parameter)
            // is attack-shaped, and there the rewrite *intentionally*
            // degrades gracefully instead of erroring.
            rig.original.reset_database();
            if rig.original.server.handle(&req).sql_error.is_some() {
                continue;
            }
            let mut diff = Differential::default();
            let rig = &mut *rig;
            compare_request(&mut rig.original, &mut rig.hardened, &req, &mut diff);
            prop_assert!(
                diff.passed(),
                "{}: responses {:?} db {:?}",
                p.slug, diff.response_mismatches, diff.db_mismatches
            );
        }

        /// The core search route concatenates a *quoted* string input;
        /// arbitrary printable text — quotes and backslashes included —
        /// must render identically (magic-quotes escaping on the original
        /// side, stripslashes-unescaped binding on the hardened side).
        #[test]
        fn quoted_string_inputs_are_bit_identical(s in "[a-zA-Z0-9'\\\\ %_]{0,12}") {
            let mut rig = rig().lock().unwrap();
            let mut diff = Differential::default();
            let req = HttpRequest::get("search").param("s", &s);
            let rig = &mut *rig;
            compare_request(&mut rig.original, &mut rig.hardened, &req, &mut diff);
            prop_assert!(
                diff.passed(),
                "search s={s:?}: responses {:?} db {:?}",
                diff.response_mismatches, diff.db_mismatches
            );
        }

        /// Skeleton invariance: whatever bytes an attacker sends, the
        /// statement text a hardened route sends to the database never
        /// contains them — injection has no text to live in.
        #[test]
        fn arbitrary_payloads_never_enter_statement_text(
            payload in "[ -~]{1,24}",
            idx in 0usize..52,
        ) {
            let mut rig = rig().lock().unwrap();
            let p = rig.plugins[idx % rig.plugins.len()].clone();
            if !rig.report.rewritten_routes().contains(&p.slug) {
                continue; // drupal-core: deliberately unrewritten
            }
            let marked = format!("Xq7Z{payload}");
            rig.hardened.reset_database();
            let resp = rig.hardened.server.handle(&crate::verify::request_for(&p, &marked));
            for q in &resp.queries {
                prop_assert!(!q.contains("Xq7Z"), "{}: payload in statement text: {q}", p.slug);
            }
            prop_assert!(!resp.body.contains(crate::wordpress::SECRET_PASSWORD));
        }
    }
}
