//! Multi-worker request serving over the testbed.
//!
//! The paper's deployment interposes Joza on a production web server,
//! where many PHP workers serve requests concurrently against **one**
//! shared protection engine. This module reproduces that regime: a pool
//! of worker threads, each with its own application instance (PHP workers
//! share no interpreter state), all funnelling queries through a single
//! shared [`GateFactory`] — exactly the seam the lock-sharded engine core
//! is designed for.
//!
//! Workers get *independent* database instances, so the workload must
//! tolerate per-worker write isolation (reads, or writes whose responses
//! don't depend on other workers' writes). What is genuinely shared — and
//! genuinely contended — is the gate: fragment store, automaton, query
//! cache, and the per-worker PTI shards behind it.

use crate::Lab;
use joza_webapp::gate::GateFactory;
use joza_webapp::request::HttpRequest;
use joza_webapp::server::Response;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Outcome of one parallel serving run.
#[derive(Debug)]
pub struct ParallelRun {
    /// Responses in the same order as the input request list.
    pub responses: Vec<Response>,
    /// Wall-clock time from the moment every worker was ready (labs
    /// built, caches whatever the factory left them) until the last
    /// worker finished its partition. Lab construction is excluded.
    pub wall: Duration,
}

impl ParallelRun {
    /// Requests served per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.responses.len() as f64 / self.wall.as_secs_f64()
    }
}

/// Serves `requests` from `threads` worker threads against one shared
/// gate factory.
///
/// Each worker builds its own lab with `build` (untimed), takes the
/// requests at indices `w, w + threads, w + 2·threads, …`, and serves
/// them through `factory`. All workers start together behind a barrier;
/// the returned [`ParallelRun::wall`] covers only the serving phase.
/// Responses come back in input order regardless of which worker served
/// them.
///
/// With `threads == 1` this is equivalent to a plain sequential loop over
/// `Server::handle_with`, which is what makes single-threaded and
/// multi-threaded verdicts directly comparable.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn serve_parallel<F>(
    build: F,
    factory: &dyn GateFactory,
    threads: usize,
    requests: &[HttpRequest],
) -> ParallelRun
where
    F: Fn() -> Lab + Sync,
{
    assert!(threads > 0, "serve_parallel needs at least one worker");
    let barrier = Barrier::new(threads + 1);
    let mut indexed: Vec<(usize, Response)> = Vec::with_capacity(requests.len());
    let mut wall = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let barrier = &barrier;
                let build = &build;
                s.spawn(move || {
                    let mut lab = build();
                    barrier.wait();
                    requests
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(threads)
                        .map(|(i, req)| (i, lab.server.handle_with(req, factory)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        for h in handles {
            indexed.extend(h.join().expect("serve_parallel worker panicked"));
        }
        wall = started.elapsed();
    });
    indexed.sort_by_key(|(i, _)| *i);
    ParallelRun { responses: indexed.into_iter().map(|(_, r)| r).collect(), wall }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_lab;
    use joza_core::{Joza, JozaConfig};
    use joza_webapp::gate::AllowAll;

    fn crawl(n: usize) -> Vec<HttpRequest> {
        (0..n)
            .map(|i| HttpRequest::get("single-post").param("p", &(1 + i % 5).to_string()))
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_order_and_bodies() {
        let requests = crawl(12);
        let mut reference = build_lab();
        let expected: Vec<String> =
            requests.iter().map(|r| reference.server.handle(r).body.clone()).collect();
        let run = serve_parallel(build_lab, &AllowAll, 3, &requests);
        assert_eq!(run.responses.len(), 12);
        let got: Vec<String> = run.responses.iter().map(|r| r.body.clone()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn parallel_verdicts_match_single_threaded_gate() {
        let lab = build_lab();
        let joza = Joza::install(&lab.server.app, JozaConfig::optimized());
        let requests = crawl(10);
        let single = serve_parallel(build_lab, &joza, 1, &requests);
        let joza2 = Joza::install(&lab.server.app, JozaConfig::optimized());
        let multi = serve_parallel(build_lab, &joza2, 4, &requests);
        let flags = |run: &ParallelRun| run.responses.iter().map(|r| r.blocked).collect::<Vec<_>>();
        assert_eq!(flags(&single), flags(&multi));
        assert!(flags(&single).iter().all(|b| !b), "benign crawl must not be blocked");
    }
}
