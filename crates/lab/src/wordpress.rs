//! The simulated WordPress: core sources, schema, seed data, core routes.
//!
//! The core sources serve two purposes. First, they are the fragment
//! vocabulary of Table III — WordPress legitimately contains fragments
//! like `UNION`, `AND`, `OR`, `SELECT`, `CHAR`, quotes, `GROUP BY`,
//! `ORDER BY`, `CAST` and `WHERE 1`, which is exactly the attack surface
//! Taintless exploits. Second, the routable core pages (`index`,
//! `single-post`, `post-comment`, `search`) drive the performance
//! evaluation: a WordPress read renders a page with many queries (§VI).

use joza_db::{Database, Value};
use joza_webapp::app::{Plugin, WebApp};

/// Marker secret stored in `wp_users.user_pass` — exploit verification
/// checks whether responses leak it.
pub const SECRET_PASSWORD: &str = "s3cr3t-pw-0xJOZA";

/// WordPress core source files (PHP subset). These are not routable; they
/// feed the fragment extractor, mimicking the vocabulary real WordPress
/// core provides.
pub fn core_sources() -> Vec<String> {
    vec![
        // wp-db.php flavoured query helpers: the rich SQL vocabulary.
        r##"
        // wp-db: query assembly helpers
        $get_option = "SELECT option_value FROM wp_options WHERE option_name = '";
        $get_option_tail = "' LIMIT 1";
        $get_post = "SELECT * FROM wp_posts WHERE ID = ";
        $get_posts = "SELECT ID, post_title, post_content, post_author, post_date FROM wp_posts WHERE post_status = 'publish' ORDER BY post_date DESC LIMIT ";
        $count_comments = "SELECT COUNT(*) FROM wp_comments WHERE comment_post_ID = ";
        $get_comments = "SELECT comment_author, comment_content FROM wp_comments WHERE comment_approved = '1' AND comment_post_ID = ";
        $insert_comment = "INSERT INTO wp_comments (comment_post_ID, comment_author, comment_content, comment_approved) VALUES (";
        $search_posts = "SELECT ID, post_title FROM wp_posts WHERE post_status = 'publish' AND (post_title LIKE '%";
        $search_mid = "%' OR post_content LIKE '%";
        $search_tail = "%') ORDER BY post_date DESC";
        $meta_join = " LEFT JOIN wp_postmeta ON wp_posts.ID = wp_postmeta.post_id ";
        $users_by_login = "SELECT ID, user_login FROM wp_users WHERE user_login = '";
        $terms = "SELECT term_id, name FROM wp_terms WHERE 1 ";
        $group_author = " GROUP BY post_author ";
        $order_title = " ORDER BY post_title ";
        $cast_helper = " CAST(";
        $char_helper = " CHAR(";
        $and_kw = " AND ";
        $or_kw = " OR ";
        $union_all = " UNION ALL ";
        $not_in = " NOT IN (";
        $hash_comment = "#";
        $quote = "'";
        $dquote = "\"";
        $backtick = "`";
        $eq = " = ";
        $paren = ") ";
        "##
        .to_string(),
        // wp-includes/formatting.php flavoured helpers.
        r#"
        // formatting helpers
        $like_wrap = " LIKE '%";
        $like_tail = "%'";
        $in_open = " IN (";
        $limit_kw = " LIMIT ";
        $offset_kw = " OFFSET ";
        $asc = " ASC";
        $desc = " DESC";
        $where_one = " WHERE 1 ";
        $is_null = " IS NULL";
        $distinct = "SELECT DISTINCT ";
        $delete_stub = "DELETE FROM wp_postmeta WHERE meta_key = '";
        $update_stub = "UPDATE wp_options SET option_value = '";
        $update_mid = "' WHERE option_name = '";
        "#
        .to_string(),
    ]
}

/// Synthesizes a WordPress-scale fragment corpus: thousands of SQL-head
/// string literals of the kind real WordPress core + 50 plugins contain.
///
/// The security evaluation (§V) uses the compact [`core_sources`]
/// vocabulary so Taintless evasion rates match the paper; the performance
/// evaluation (§VI) additionally loads this corpus so fragment-store scan
/// costs are representative of "WordPress and all plugins" — the
/// unoptimized-vs-optimized matcher contrast of Fig. 7 is only honest at
/// realistic vocabulary size.
///
/// Every literal embeds at least one valid SQL token, so the extractor
/// retains all of them (§IV-A). The output is deterministic. The literals
/// are *long query heads*: they deliberately add no short critical-token
/// fragments beyond those already in [`core_sources`], so PTI's attack
/// surface (Table III) is unchanged.
pub fn synthetic_core_sources(files: usize) -> Vec<String> {
    const TABLES: [&str; 20] = [
        "wp_posts",
        "wp_options",
        "wp_comments",
        "wp_users",
        "wp_terms",
        "wp_postmeta",
        "wp_usermeta",
        "wp_links",
        "wp_term_taxonomy",
        "wp_term_relationships",
        "wp_gallery",
        "wp_events",
        "wp_ratings",
        "wp_downloads",
        "wp_banners",
        "wp_forum_threads",
        "wp_forum_posts",
        "wp_polls",
        "wp_coupons",
        "wp_stats",
    ];
    const COLUMNS: [&str; 18] = [
        "ID",
        "post_title",
        "post_content",
        "post_status",
        "post_author",
        "post_date",
        "option_name",
        "option_value",
        "comment_content",
        "comment_author",
        "user_login",
        "user_email",
        "meta_key",
        "meta_value",
        "name",
        "slug",
        "count",
        "created_at",
    ];
    const TEMPLATES: [(&str, &str); 14] = [
        ("SELECT {c} FROM {t} WHERE {c2} = '", "'"),
        ("SELECT {c}, {c2} FROM {t} WHERE {c} = ", ""),
        ("SELECT COUNT(*) FROM {t} WHERE {c} = '", "' LIMIT 1"),
        ("SELECT * FROM {t} WHERE {c} IN (", ")"),
        ("SELECT {c} FROM {t} ORDER BY {c2} DESC LIMIT ", ""),
        ("SELECT DISTINCT {c} FROM {t} WHERE {c2} LIKE '%", "%'"),
        ("UPDATE {t} SET {c} = '", "' WHERE {c2} = "),
        ("UPDATE {t} SET {c} = {c2} + 1 WHERE ID = ", ""),
        ("INSERT INTO {t} ({c}, {c2}) VALUES ('", "', '"),
        ("DELETE FROM {t} WHERE {c} = '", "'"),
        ("SELECT {c} FROM {t} LEFT JOIN {t2} ON {t}.ID = {t2}.ID WHERE ", ""),
        ("SELECT {c} FROM {t} GROUP BY {c2} HAVING COUNT(*) > ", ""),
        ("SELECT {c} FROM {t} WHERE {c2} IS NULL ORDER BY {c} ASC", ""),
        ("SELECT {c} FROM {t} WHERE {c2} BETWEEN ", " AND "),
    ];
    let mut out = Vec::with_capacity(files);
    let mut var = 0usize;
    let mut combo = 0usize;
    for f in 0..files {
        let mut src = format!("// synthetic core file {f}\n");
        // ~90 literals per file keeps individual sources lexer-friendly.
        for _ in 0..90 {
            let t = TABLES[combo % TABLES.len()];
            let t2 = TABLES[(combo / 3 + 7) % TABLES.len()];
            let c = COLUMNS[(combo / TABLES.len()) % COLUMNS.len()];
            let c2 = COLUMNS[(combo / (TABLES.len() * COLUMNS.len()) + 5) % COLUMNS.len()];
            let (head, tail) = TEMPLATES[combo % TEMPLATES.len()];
            let head =
                head.replace("{t2}", t2).replace("{t}", t).replace("{c2}", c2).replace("{c}", c);
            let tail =
                tail.replace("{t2}", t2).replace("{t}", t).replace("{c2}", c2).replace("{c}", c);
            src.push_str(&format!("$sq{var} = \"{head}\";\n"));
            var += 1;
            if !tail.is_empty() {
                src.push_str(&format!("$sq{var} = \"{tail}\";\n"));
                var += 1;
            }
            combo = combo.wrapping_mul(31).wrapping_add(17) % 1_000_003;
        }
        out.push(src);
    }
    out
}

/// The routable WordPress core pages.
fn core_plugins() -> Vec<Plugin> {
    let index = Plugin::new(
        "index",
        "3.8",
        r#"
        // Front page: options, recent posts, comment counts per post.
        $r = mysql_query("SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1");
        $r = mysql_query("SELECT option_value FROM wp_options WHERE option_name = 'blogname' LIMIT 1");
        $r = mysql_query("SELECT option_value FROM wp_options WHERE option_name = 'template' LIMIT 1");
        $posts = mysql_query("SELECT ID, post_title, post_content, post_author, post_date FROM wp_posts WHERE post_status = 'publish' ORDER BY post_date DESC LIMIT 10");
        while ($post = mysql_fetch_assoc($posts)) {
            echo "<h2>", $post['post_title'], "</h2>";
            $pid = $post['ID'];
            $c = mysql_query("SELECT COUNT(*) FROM wp_comments WHERE comment_post_ID = " . $pid);
            $row = mysql_fetch_row($c);
            echo "<span>", $row[0], " comments</span>";
        }
        $r = mysql_query("SELECT term_id, name FROM wp_terms WHERE 1 ORDER BY name ASC LIMIT 20");
        while ($t = mysql_fetch_assoc($r)) { echo "<a>", $t['name'], "</a>"; }
        "#,
    );
    let single = Plugin::new(
        "single-post",
        "3.8",
        r#"
        // Single post page. Real WordPress issues ~20 queries per render
        // (options, the post, author, metadata, terms, sidebar, comments).
        $id = intval($_GET['p']);
        $opts = array('siteurl', 'blogname', 'template', 'blog_charset', 'posts_per_page');
        foreach ($opts as $o) {
            $r = mysql_query("SELECT option_value FROM wp_options WHERE option_name = '" . $o . "' LIMIT 1");
        }
        $post = mysql_query("SELECT * FROM wp_posts WHERE ID = " . $id . " LIMIT 1");
        $row = mysql_fetch_assoc($post);
        if ($row) {
            echo "<h1>", $row['post_title'], "</h1>";
            echo "<div>", $row['post_content'], "</div>";
            $author = mysql_query("SELECT user_login FROM wp_users WHERE ID = " . intval($row['post_author']) . " LIMIT 1");
            $a = mysql_fetch_assoc($author);
            if ($a) { echo "<span>by ", $a['user_login'], "</span>"; }
            $meta = mysql_query("SELECT meta_key, meta_value FROM wp_postmeta WHERE post_id = " . $id);
            while ($m = mysql_fetch_assoc($meta)) { echo "<!-- ", $m['meta_key'], " -->"; }
            $terms = mysql_query("SELECT term_id, name FROM wp_terms WHERE 1 ORDER BY name ASC LIMIT 20");
            $cnt = mysql_query("SELECT COUNT(*) FROM wp_comments WHERE comment_post_ID = " . $id);
            $adjacent = mysql_query("SELECT ID, post_title FROM wp_posts WHERE post_status = 'publish' AND ID < " . $id . " ORDER BY ID DESC LIMIT 1");
            $nextp = mysql_query("SELECT ID, post_title FROM wp_posts WHERE post_status = 'publish' AND ID > " . $id . " ORDER BY ID ASC LIMIT 1");
            $sidebar = mysql_query("SELECT ID, post_title FROM wp_posts WHERE post_status = 'publish' ORDER BY post_date DESC LIMIT 5");
            $authors = mysql_query("SELECT post_author, COUNT(*) FROM wp_posts WHERE post_status = 'publish' GROUP BY post_author");
            $archive = mysql_query("SELECT COUNT(*) FROM wp_posts WHERE post_status = 'publish'");
            $recent_comments = mysql_query("SELECT comment_author, comment_content FROM wp_comments WHERE comment_approved = '1' ORDER BY comment_ID DESC LIMIT 5");
            $comments = mysql_query("SELECT comment_author, comment_content FROM wp_comments WHERE comment_approved = '1' AND comment_post_ID = " . $id . " ORDER BY comment_ID ASC");
            while ($c = mysql_fetch_assoc($comments)) {
                echo "<p>", $c['comment_author'], ": ", $c['comment_content'], "</p>";
            }
        } else {
            echo "not found";
        }
        "#,
    );
    let comment = Plugin::new(
        "post-comment",
        "3.8",
        r#"
        // Comment submission (the write path of §VI).
        $pid = intval($_POST['comment_post_ID']);
        $author = $_POST['author'];
        $content = $_POST['comment'];
        $exists = mysql_query("SELECT ID FROM wp_posts WHERE ID = " . $pid . " AND post_status = 'publish' LIMIT 1");
        if (mysql_num_rows($exists) == 0) { echo "no such post"; exit; }
        $dup = mysql_query("SELECT COUNT(*) FROM wp_comments WHERE comment_post_ID = " . $pid . " AND comment_content = '" . $content . "'");
        $flood = mysql_query("SELECT comment_ID FROM wp_comments WHERE comment_author = '" . $author . "' AND comment_content = '" . $content . "' LIMIT 1");
        $ok = mysql_query("INSERT INTO wp_comments (comment_post_ID, comment_author, comment_content, comment_approved) VALUES (" . $pid . ", '" . $author . "', '" . $content . "', '1')");
        $count = mysql_query("SELECT COUNT(*) FROM wp_comments WHERE comment_post_ID = " . $pid);
        $row = mysql_fetch_row($count);
        $up = mysql_query("UPDATE wp_posts SET comment_count = " . $row[0] . " WHERE ID = " . $pid);
        if ($ok) { echo "comment saved"; } else { echo "error: ", mysql_error(); }
        "#,
    );
    let search = Plugin::new(
        "search",
        "3.8",
        r#"
        // Search page (the paper's random-search workload, Fig. 8).
        $s = $_GET['s'];
        $r = mysql_query("SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1");
        $found = mysql_query("SELECT ID, post_title FROM wp_posts WHERE post_status = 'publish' AND (post_title LIKE '%" . $s . "%' OR post_content LIKE '%" . $s . "%') ORDER BY post_date DESC");
        $n = mysql_num_rows($found);
        echo "<h1>", $n, " results</h1>";
        while ($p = mysql_fetch_assoc($found)) { echo "<h3>", $p['post_title'], "</h3>"; }
        "#,
    );
    vec![index, single, comment, search]
}

/// Builds the WordPress application: magic-quotes input pipeline, core
/// sources, core routes.
pub fn wordpress_app() -> WebApp {
    let mut app = WebApp::wordpress_style("wordpress-3.8");
    for src in core_sources() {
        app.add_core_source(&src);
    }
    for p in core_plugins() {
        app.add_plugin(p);
    }
    app
}

/// Creates the `wp_*` schema and seeds it with deterministic content.
pub fn wordpress_database() -> Database {
    let mut db = Database::new();
    db.create_table("wp_options", &["option_id", "option_name", "option_value"]);
    for (i, (k, v)) in [
        ("siteurl", "http://localhost/wp"),
        ("blogname", "Joza Test Blog"),
        ("template", "twentyfourteen"),
        ("blog_charset", "UTF-8"),
        ("posts_per_page", "10"),
    ]
    .iter()
    .enumerate()
    {
        db.insert_row("wp_options", vec![Value::Int(i as i64 + 1), (*k).into(), (*v).into()]);
    }

    db.create_table(
        "wp_posts",
        &[
            "ID",
            "post_title",
            "post_content",
            "post_author",
            "post_date",
            "post_status",
            "comment_count",
        ],
    );
    for i in 1..=40i64 {
        let status = if i % 10 == 0 { "draft" } else { "publish" };
        db.insert_row(
            "wp_posts",
            vec![
                Value::Int(i),
                format!("Post number {i}").into(),
                format!("Content of post {i}: lorem ipsum dolor sit amet, entry {i}.").into(),
                Value::Int(1 + (i % 3)),
                format!("2014-{:02}-{:02} 10:00:00", 1 + (i % 12), 1 + (i % 28)).into(),
                status.into(),
                Value::Int(0),
            ],
        );
    }

    db.create_table(
        "wp_comments",
        &["comment_ID", "comment_post_ID", "comment_author", "comment_content", "comment_approved"],
    );
    for i in 1..=60i64 {
        db.insert_row(
            "wp_comments",
            vec![
                Value::Int(i),
                Value::Int(1 + (i % 20)),
                format!("visitor{i}").into(),
                format!("This is comment {i}, nice post!").into(),
                "1".into(),
            ],
        );
    }

    db.create_table("wp_users", &["ID", "user_login", "user_pass", "user_email"]);
    db.insert_row(
        "wp_users",
        vec![Value::Int(1), "admin".into(), SECRET_PASSWORD.into(), "admin@example.com".into()],
    );
    db.insert_row(
        "wp_users",
        vec![Value::Int(2), "editor".into(), "editor-pw-1".into(), "ed@example.com".into()],
    );
    db.insert_row(
        "wp_users",
        vec![Value::Int(3), "author".into(), "author-pw-2".into(), "au@example.com".into()],
    );

    db.create_table("wp_terms", &["term_id", "name", "slug"]);
    for (i, name) in ["news", "tech", "security", "rust", "wordpress"].iter().enumerate() {
        db.insert_row("wp_terms", vec![Value::Int(i as i64 + 1), (*name).into(), (*name).into()]);
    }

    db.create_table("wp_postmeta", &["meta_id", "post_id", "meta_key", "meta_value"]);
    for i in 1..=20i64 {
        db.insert_row(
            "wp_postmeta",
            vec![Value::Int(i), Value::Int(1 + (i % 20)), "_views".into(), Value::Int(i * 7)],
        );
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_phpsim::fragments::FragmentSet;
    use joza_webapp::request::HttpRequest;
    use joza_webapp::server::Server;

    #[test]
    fn core_pages_render_without_errors() {
        let mut server = Server::new(wordpress_app(), wordpress_database());
        let index = server.handle(&HttpRequest::get("index"));
        assert!(index.body.contains("Post number"), "{}", index.body);
        assert!(
            index.queries.len() >= 10,
            "a WP read issues many queries: {}",
            index.queries.len()
        );
        assert!(index.sql_error.is_none(), "{:?}", index.sql_error);

        let single = server.handle(&HttpRequest::get("single-post").param("p", "3"));
        assert!(single.body.contains("Post number 3"));

        let search = server.handle(&HttpRequest::get("search").param("s", "lorem"));
        assert!(search.body.contains("results"));

        let comment = server.handle(
            &HttpRequest::post("post-comment")
                .param("comment_post_ID", "2")
                .param("author", "alice")
                .param("comment", "what a post!"),
        );
        assert_eq!(comment.body, "comment saved", "{}", comment.body);
    }

    #[test]
    fn comment_with_apostrophe_survives_magic_quotes() {
        let mut server = Server::new(wordpress_app(), wordpress_database());
        let resp = server.handle(
            &HttpRequest::post("post-comment")
                .param("comment_post_ID", "2")
                .param("author", "o'brien")
                .param("comment", "it's great, isn't it?"),
        );
        assert_eq!(resp.body, "comment saved", "{}", resp.body);
    }

    #[test]
    fn table3_vocabulary_present_in_core_fragments() {
        let mut set = FragmentSet::new();
        for src in core_sources() {
            set.add_source(&src);
        }
        let all: Vec<&str> = set.iter().collect();
        // Table III fragments must be *derivable*: present as a fragment or
        // inside one.
        for needle in [
            "UNION", "AND", "OR", "SELECT", "CHAR", "#", "'", "GROUP BY", "ORDER BY", "CAST",
            "WHERE 1",
        ] {
            assert!(all.iter().any(|f| f.contains(needle)), "vocabulary missing {needle:?}");
        }
    }

    #[test]
    fn seed_data_is_deterministic() {
        let a = wordpress_database();
        let b = wordpress_database();
        assert_eq!(a.table("wp_posts").unwrap().rows(), b.table("wp_posts").unwrap().rows());
    }
}
