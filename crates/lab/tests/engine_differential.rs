//! Full-corpus differential test: the bytecode VM against the tree-walk
//! oracle.
//!
//! The VM is the serving engine; the tree-walker is kept as the ground
//! truth it is diffed against. Every request of the testbed's corpora —
//! the benign performance corpus, every plugin's shipped exploit, and the
//! second-order two-phase plant/trigger pairs (benign, exploit, and
//! evasive variants) — must come back *bit-identical* across engines:
//! body, attempted-query list (content and order), surfaced SQL error,
//! and blocked flag. The databases are diffed too, so write effects
//! cannot silently diverge.

use joza_lab::harden::{benign_corpus, dump_database};
use joza_lab::second_order::build_second_order_lab;
use joza_lab::verify::request_for;
use joza_lab::{build_lab, Lab};
use joza_webapp::request::HttpRequest;
use joza_webapp::server::{Engine, Response, Server};

/// Runs one request through both servers and asserts the observable
/// response surface is identical.
fn diff_request(vm: &mut Server, tw: &mut Server, req: &HttpRequest, label: &str) {
    assert_eq!(vm.engine, Engine::Vm);
    assert_eq!(tw.engine, Engine::TreeWalk);
    let rv: Response = vm.handle(req);
    let rt: Response = tw.handle(req);
    assert_eq!(rv.body, rt.body, "[{label}] body diverged");
    assert_eq!(rv.queries, rt.queries, "[{label}] query list diverged");
    assert_eq!(rv.sql_error, rt.sql_error, "[{label}] sql_error diverged");
    assert_eq!(rv.blocked, rt.blocked, "[{label}] blocked flag diverged");
    assert_eq!(rv.executed, rt.executed, "[{label}] executed count diverged");
}

fn lab_pair() -> (Lab, Lab) {
    let vm_lab = build_lab();
    let mut tw_lab = build_lab();
    tw_lab.server.set_engine(Engine::TreeWalk);
    (vm_lab, tw_lab)
}

#[test]
fn benign_corpus_is_bit_identical_across_engines() {
    let (mut vm_lab, mut tw_lab) = lab_pair();
    let corpus = benign_corpus(&vm_lab);
    assert!(!corpus.is_empty());
    for (i, req) in corpus.iter().enumerate() {
        diff_request(&mut vm_lab.server, &mut tw_lab.server, req, &format!("benign #{i}"));
    }
    assert_eq!(
        dump_database(&vm_lab.server.db),
        dump_database(&tw_lab.server.db),
        "database state diverged after benign replay"
    );
}

#[test]
fn exploit_corpus_is_bit_identical_across_engines() {
    let (mut vm_lab, mut tw_lab) = lab_pair();
    let plugins: Vec<_> = vm_lab.plugins.iter().chain(vm_lab.cms_cases.iter()).cloned().collect();
    assert_eq!(plugins.len(), 53);
    for p in &plugins {
        // Exploit payload, then the plugin's benign request value, so both
        // the attack path and the legitimate path are covered per route.
        for (kind, value) in [
            ("exploit", p.exploit.primary_payload().to_string()),
            ("benign", p.benign_value.clone()),
        ] {
            let req = request_for(p, &value);
            diff_request(
                &mut vm_lab.server,
                &mut tw_lab.server,
                &req,
                &format!("{} {}", p.slug, kind),
            );
        }
        // Attacks may write (double-blind markers etc.); keep the two
        // databases in lockstep and verified equal after every plugin.
        assert_eq!(
            dump_database(&vm_lab.server.db),
            dump_database(&tw_lab.server.db),
            "database state diverged after {}",
            p.slug
        );
        vm_lab.reset_database();
        tw_lab.reset_database();
    }
}

#[test]
fn second_order_corpus_is_bit_identical_across_engines() {
    let mut vm_so = build_second_order_lab();
    let mut tw_so = build_second_order_lab();
    tw_so.lab.server.set_engine(Engine::TreeWalk);
    let cases = vm_so.cases.clone();
    assert!(!cases.is_empty());
    for case in &cases {
        let evasive = case.evasive_variant();
        // Three two-phase flows per case: benign plant→trigger,
        // exploit plant→trigger, evasive plant→trigger. Databases reset
        // between flows so each plant lands on fresh state.
        let flows: [(&str, HttpRequest, HttpRequest); 3] = [
            ("benign", case.benign_plant_request(), case.trigger_request()),
            ("exploit", case.exploit_plant_request(), case.trigger_request()),
            ("evasive", evasive.exploit_plant_request(), evasive.trigger_request()),
        ];
        for (kind, plant, trigger) in flows {
            vm_so.reset_database();
            tw_so.reset_database();
            let label = format!("{:?} {kind}", case.class);
            diff_request(&mut vm_so.lab.server, &mut tw_so.lab.server, &plant, &label);
            diff_request(&mut vm_so.lab.server, &mut tw_so.lab.server, &trigger, &label);
            assert_eq!(
                dump_database(&vm_so.lab.server.db),
                dump_database(&tw_so.lab.server.db),
                "database state diverged after {label}"
            );
        }
    }
}

#[test]
fn unroutable_and_parse_error_paths_match() {
    let (mut vm_lab, mut tw_lab) = lab_pair();
    // 404 path.
    diff_request(&mut vm_lab.server, &mut tw_lab.server, &HttpRequest::get("no-such-route"), "404");
    // Parse-error path: both engines fail at the same (parse) stage.
    let slug = vm_lab.plugins[0].slug.clone();
    assert!(vm_lab.server.app.set_plugin_source(&slug, "$x = ;"));
    assert!(tw_lab.server.app.set_plugin_source(&slug, "$x = ;"));
    let req = HttpRequest::get(&slug).param("id", "1");
    diff_request(&mut vm_lab.server, &mut tw_lab.server, &req, "parse error");
}
