//! Property-based tests for the PHP-subset interpreter and the fragment
//! extractor — the two halves whose agreement PTI's soundness rests on.

use joza_phpsim::fragments::{extract_fragments, FragmentSet};
use joza_phpsim::interp::{Host, Interp, QueryOutcome};
use joza_phpsim::lexer::lex_php;
use joza_phpsim::parser::parse_program;
use proptest::prelude::*;

/// A host that records queries and returns no rows.
#[derive(Default)]
struct RecordingHost {
    queries: Vec<String>,
}

impl Host for RecordingHost {
    fn query(&mut self, sql: &str) -> QueryOutcome {
        self.queries.push(sql.to_string());
        QueryOutcome::Rows(Vec::new())
    }
}

proptest! {
    /// The lexer and parser never panic on arbitrary input.
    #[test]
    fn frontend_is_total(src in ".{0,300}") {
        let _ = lex_php(&src);
        let _ = parse_program(&src);
    }

    /// Every extracted fragment is a substring of some string literal in
    /// the source (after escape processing the fragment text appears in
    /// the decoded literal).
    #[test]
    fn fragments_come_from_literals(
        lits in proptest::collection::vec("[a-zA-Z =,']{1,25}", 1..5),
    ) {
        let src: String = lits
            .iter()
            .enumerate()
            .map(|(i, l)| format!("$v{i} = \"{}\";\n", l.replace('"', "")))
            .collect();
        let frags = extract_fragments(&src);
        for f in &frags {
            prop_assert!(
                lits.iter().any(|l| l.replace('"', "").contains(f.as_str())),
                "fragment {f:?} not found in any literal"
            );
        }
    }

    /// The central PTI soundness property on straight-line code: a query
    /// built purely from program literals is fully covered by the
    /// program's own fragment set.
    #[test]
    fn literal_only_queries_are_fragment_covered(id in 0i64..100000) {
        let src = format!(
            r#"
            $q = "SELECT name FROM users WHERE id = " . {id} . " LIMIT 1";
            $r = mysql_query($q);
            "#
        );
        let program = parse_program(&src).expect("valid program");
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&mut host);
        interp.run(&program).expect("runs");
        drop(interp);
        prop_assert_eq!(host.queries.len(), 1);

        let mut set = FragmentSet::new();
        set.add_source(&src);
        // Every non-numeric part of the query must be inside a fragment.
        let query = &host.queries[0];
        let frags: Vec<&str> = set.iter().collect();
        for part in ["SELECT name FROM users WHERE id = ", " LIMIT 1"] {
            prop_assert!(frags.iter().any(|f| f.contains(part)), "{part:?} missing from {frags:?}");
            prop_assert!(query.contains(part));
        }
    }

    /// String concatenation in the interpreter matches Rust's.
    #[test]
    fn concat_semantics(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let src = format!(r#"$x = "{a}" . "{b}"; echo $x;"#);
        let program = parse_program(&src).expect("valid");
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&mut host);
        interp.run(&program).expect("runs");
        prop_assert_eq!(interp.output(), format!("{a}{b}"));
    }

    /// `intval` clamps arbitrary input to its numeric prefix — the
    /// sanitization some plugins rely on (and others forget).
    #[test]
    fn intval_builtin(n in -10000i64..10000, junk in "[a-z]{0,8}") {
        let src = r#"$x = intval($_GET['v']); echo $x;"#;
        let program = parse_program(src).expect("valid");
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&mut host);
        interp.set_get_param("v", &format!("{n}{junk}"));
        interp.run(&program).expect("runs");
        prop_assert_eq!(interp.output(), n.to_string());
    }

    /// addslashes escaping matches PHP: ' " \ get a backslash.
    #[test]
    fn addslashes_builtin(s in "[a-z'\"\\\\]{0,20}") {
        let src = r#"$x = addslashes($_GET['v']); echo $x;"#;
        let program = parse_program(src).expect("valid");
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&mut host);
        interp.set_get_param("v", &s);
        interp.run(&program).expect("runs");
        let expected: String = s
            .chars()
            .flat_map(|c| match c {
                '\'' | '"' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        prop_assert_eq!(interp.output(), expected);
    }

    /// base64 round-trips through the interpreter builtins.
    #[test]
    fn base64_roundtrip(s in "[ -~]{0,40}") {
        let src = r#"echo base64_decode(base64_encode($_GET['v']));"#;
        let program = parse_program(src).expect("valid");
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&mut host);
        interp.set_get_param("v", &s);
        interp.run(&program).expect("runs");
        prop_assert_eq!(interp.output(), s);
    }
}

/// Fragment extraction splits interpolated strings at placeholders into
/// multiple fragments (§IV-A's format-string rule).
#[test]
fn interpolation_splits_fragments() {
    let src = r#"$q = "SELECT * from users where id = $id and password=$password";"#;
    let frags = extract_fragments(src);
    assert!(frags.iter().any(|f| f.contains("SELECT * from users where id = ")), "{frags:?}");
    assert!(frags.iter().any(|f| f.contains("and password=")), "{frags:?}");
    assert!(
        !frags.iter().any(|f| f.contains("$id")),
        "placeholder must not survive into fragments: {frags:?}"
    );
}

/// Only fragments containing at least one valid SQL token are retained —
/// literals that lex to nothing but unknown bytes are dropped. (The rule
/// is permissive on purpose: identifiers and `?` placeholders are valid
/// SQL tokens, so most human text survives, as in the paper's Table III.)
#[test]
fn non_sql_literals_are_dropped() {
    let mut set = FragmentSet::new();
    set.add_source(r#"$x = "{}"; $y = "SELECT"; "#);
    let frags: Vec<&str> = set.iter().collect();
    assert!(frags.iter().any(|f| f.contains("SELECT")));
    assert!(!frags.iter().any(|f| f.contains("{}")), "{frags:?}");
}
