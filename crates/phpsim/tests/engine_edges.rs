//! Edge-semantics tests written once and run against *both* engines.
//!
//! Each case executes the same source through the tree-walking
//! interpreter and through compile+VM, asserting identical output, query
//! streams, and terminal error. These pin the corners where a bytecode
//! lowering most easily drifts from the oracle: foreach over an array
//! mutated inside the loop body, break/continue from nested loops,
//! `Terminated` aborting mid-expression, uninitialized-variable reads,
//! and PHP's string/number coercions through builtins.

use joza_phpsim::interp::{Host, Interp, PhpError, QueryOutcome};
use joza_phpsim::parser::parse_program;
use joza_phpsim::{compile, Vm};

/// Scripted host: answers queries from a canned playlist and records the
/// SQL it saw. `Terminate` entries kill the request mid-expression.
struct ScriptHost {
    seen: Vec<String>,
    script: Vec<QueryOutcome>,
}

impl ScriptHost {
    fn new(script: Vec<QueryOutcome>) -> Self {
        ScriptHost { seen: Vec::new(), script }
    }
}

impl Host for ScriptHost {
    fn query(&mut self, sql: &str) -> QueryOutcome {
        self.seen.push(sql.to_string());
        if self.script.is_empty() {
            QueryOutcome::Rows(vec![])
        } else {
            self.script.remove(0)
        }
    }

    fn query_prepared(&mut self, sql: &str, params: &[(String, String)]) -> QueryOutcome {
        self.seen.push(format!("PREPARED {sql} {params:?}"));
        if self.script.is_empty() {
            QueryOutcome::Rows(vec![])
        } else {
            self.script.remove(0)
        }
    }
}

/// Observable result surface of one run, comparable across engines.
#[derive(Debug, PartialEq)]
struct Run {
    result: Result<(), PhpError>,
    output: String,
    queries: Vec<String>,
}

fn run_both(src: &str, params: &[(&str, &str)], script: Vec<QueryOutcome>) -> Run {
    let prog = parse_program(src).expect("edge-case source must parse");

    let mut tw_host = ScriptHost::new(script.clone());
    let mut interp = Interp::new(&mut tw_host);
    for (k, v) in params {
        interp.set_get_param(k, v);
    }
    let tw_result = interp.run(&prog);
    let tw = Run { result: tw_result, output: interp.output().to_string(), queries: tw_host.seen };

    let chunk = compile(&prog);
    let mut vm_host = ScriptHost::new(script);
    let mut vm = Vm::new(&mut vm_host);
    for (k, v) in params {
        vm.set_get_param(k, v);
    }
    let vm_result = vm.run(&chunk);
    let vm_run = Run { result: vm_result, output: vm.output().to_string(), queries: vm_host.seen };

    assert_eq!(vm_run, tw, "engines diverged on:\n{src}");
    tw
}

fn run_both_plain(src: &str) -> Run {
    run_both(src, &[], vec![])
}

#[test]
fn foreach_snapshots_array_mutated_in_loop() {
    // PHP's foreach iterates a snapshot: pushes from inside the body must
    // not extend the iteration, and writes to visited cells must not be
    // observed by later iterations of the same loop.
    let run = run_both_plain(
        r#"
        $a = array(1, 2, 3);
        foreach ($a as $k => $v) {
            $a[] = $v + 10;
            $a[0] = 99;
            echo $k . ":" . $v . ";";
        }
        echo count($a);
        "#,
    );
    assert_eq!(run.output, "0:1;1:2;2:3;6");
    assert_eq!(run.result, Ok(()));
}

#[test]
fn foreach_element_removal_does_not_affect_iteration() {
    let run = run_both_plain(
        r#"
        $a = array("x" => "1", "y" => "2", "z" => "3");
        foreach ($a as $k => $v) {
            $a = array();
            echo $k . "=" . $v . " ";
        }
        "#,
    );
    assert_eq!(run.output, "x=1 y=2 z=3 ");
}

#[test]
fn break_and_continue_inner_loop_only() {
    // break/continue bind to the innermost enclosing loop; the outer
    // while keeps running.
    let run = run_both_plain(
        r#"
        $i = 0;
        while ($i < 3) {
            $i = $i + 1;
            foreach (array(1, 2, 3, 4) as $v) {
                if ($v == 2) { continue; }
                if ($v == 4) { break; }
                echo $i . "." . $v . " ";
            }
        }
        echo "done";
        "#,
    );
    assert_eq!(run.output, "1.1 1.3 2.1 2.3 3.1 3.3 done");
}

#[test]
fn break_inside_foreach_inside_while_pops_iterator_state() {
    // A foreach broken out of early must not leak iterator state into the
    // next arrival at the same foreach (regression guard for VM iterator
    // stack handling).
    let run = run_both_plain(
        r#"
        $round = 0;
        while ($round < 2) {
            $round = $round + 1;
            foreach (array("a", "b", "c") as $v) {
                echo $v;
                if ($v == "b") { break; }
            }
        }
        "#,
    );
    assert_eq!(run.output, "abab");
}

#[test]
fn top_level_break_and_continue_end_program() {
    let b = run_both_plain(r#"echo "x"; break; echo "y";"#);
    assert_eq!(b.output, "x");
    assert_eq!(b.result, Ok(()));
    let c = run_both_plain(r#"echo "x"; continue; echo "y";"#);
    assert_eq!(c.output, "x");
    assert_eq!(c.result, Ok(()));
}

#[test]
fn terminated_aborts_mid_expression() {
    // The kill fires while evaluating the *right-hand side* of a concat
    // inside an assignment: nothing after the query may execute, the
    // assignment must not land, and the partial output must match.
    let run = run_both(
        r#"
        echo "pre;";
        $x = "q=" . mysql_query("SELECT 1") . ";tail";
        echo "post;";
        echo $x;
        "#,
        &[],
        vec![QueryOutcome::Terminated],
    );
    assert_eq!(run.result, Err(PhpError::Terminated));
    assert_eq!(run.output, "pre;");
    assert_eq!(run.queries, vec!["SELECT 1"]);
}

#[test]
fn terminated_aborts_inside_loop_condition() {
    let run = run_both(
        r#"
        while (mysql_query("SELECT tick")) { echo "body;"; }
        echo "after";
        "#,
        &[],
        vec![QueryOutcome::Rows(vec![vec![("c".into(), "1".into())]]), QueryOutcome::Terminated],
    );
    assert_eq!(run.result, Err(PhpError::Terminated));
    assert_eq!(run.output, "body;");
    assert_eq!(run.queries.len(), 2);
}

#[test]
fn uninitialized_variables_read_as_null_everywhere() {
    // Undefined vars: empty in string context, 0 in numeric context,
    // false in boolean context, and count() of a scalar-ish null is 0.
    let run = run_both_plain(
        r#"
        echo "[" . $undef . "]";
        echo $undef + 5;
        if ($undef) { echo "T"; } else { echo "F"; }
        echo intval($undef);
        $undef2[3] = "deep";
        echo $undef2[3];
        "#,
    );
    assert_eq!(run.output, "[]5F0deep");
}

#[test]
fn string_number_coercion_in_comparisons_and_builtins() {
    let run = run_both_plain(
        r#"
        echo ("10" == "1e1") ? "a" : "b";
        echo (0 == "x") ? "c" : "d";
        echo ("abc" . 5) . (5 . "");
        echo intval("12abc") + intval("abc");
        echo strlen(42);
        echo ("2" + "3way");
        "#,
    );
    // "10"=="1e1" numeric-compares equal ("a"); the interpreter keeps
    // PHP5/7 loose-compare semantics where 0 == "x" coerces the string to
    // 0 ("c"); "abc".5 → "abc5", 5."" → "5"; intval("12abc")+intval("abc")
    // = 12; strlen(42) = 2; "2"+"3way" = 5.
    assert_eq!(run.output, "acabc551225");
    assert_eq!(run.result, Ok(()));
}

#[test]
fn compound_assign_and_increment_coercions() {
    let run = run_both_plain(
        r#"
        $s = "5";
        $s += 2;
        echo $s;
        $t = "a";
        $t .= 3 + 4;
        echo $t;
        $c = $n . "7";
        $c += 1;
        echo $c;
        "#,
    );
    assert_eq!(run.output, "7a78");
}

#[test]
fn isset_does_not_evaluate_and_arrays_coerce() {
    let run = run_both(
        r#"
        if (isset($_GET['present'])) { echo "P"; }
        if (isset($_GET['absent'])) { echo "A"; } else { echo "-"; }
        $a = array(1);
        if (isset($a[0])) { echo "I"; }
        if (isset($a[9])) { echo "J"; } else { echo "-"; }
        if (isset(mysql_query("MUST NOT RUN"))) { echo "Q"; }
        "#,
        &[("present", "yes")],
        vec![],
    );
    // isset over a non-variable clause is statically true and must not
    // issue the query.
    assert_eq!(run.output, "P-I-Q");
    assert!(run.queries.is_empty(), "isset must not evaluate its clause");
}

#[test]
fn query_error_then_recovery_matches() {
    let run = run_both(
        r#"
        $r = mysql_query("BROKEN");
        if ($r) { echo "ok"; } else { echo "err:" . mysql_error(); }
        $r2 = mysql_query("SELECT fine");
        if ($r2) { echo ";ok2:" . mysql_error() . "."; }
        "#,
        &[],
        vec![QueryOutcome::Error("syntax oops".into()), QueryOutcome::Rows(vec![])],
    );
    assert_eq!(run.output, "err:syntax oops;ok2:.");
    assert_eq!(run.result, Ok(()));
}

#[test]
fn exit_with_non_string_argument_appends_nothing() {
    let run = run_both_plain(r#"echo "x"; exit(3); echo "y";"#);
    assert_eq!(run.output, "x");
    let run2 = run_both_plain(r#"echo "x"; die("bye"); echo "y";"#);
    assert_eq!(run2.output, "xbye");
}
