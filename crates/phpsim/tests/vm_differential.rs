//! Random-program differential test: compile+VM vs the tree-walking
//! oracle on generated phpsim programs.
//!
//! A seeded xorshift generator emits random — but syntactically valid —
//! PHP-subset programs over the grammar the testbed exercises:
//! assignments (plain, compound, indexed), echo, string interpolation,
//! `if`/`while`/`foreach` with `break`/`continue`, concat chains,
//! arithmetic and comparisons, superglobal reads, array literals,
//! builtin calls, and `mysql_query`/`db_query` host calls. Each program
//! runs through both engines; the observable surface (terminal result,
//! echoed output, query stream, prepared-query stream) must be
//! bit-identical. The proptest harness supplies the seeds so failures
//! reproduce deterministically.

use joza_phpsim::interp::{Host, Interp, PhpError, QueryOutcome};
use joza_phpsim::parser::parse_program;
use joza_phpsim::{compile, Vm};
use proptest::prelude::*;

/// Deterministic generator state (xorshift64*).
struct Gen {
    state: u64,
    /// Remaining statement budget — bounds program size.
    budget: u32,
    /// Monotonic loop-counter id: every generated `while` gets its own
    /// counter variable, so nested loops can never clobber each other's
    /// counter and spin to the interpreter's iteration guard.
    next_counter: u32,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { state: seed.wrapping_mul(2685821657736338717).max(1), budget: 24, next_counter: 0 }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn var(&mut self) -> String {
        format!("$v{}", self.below(4))
    }

    fn word(&mut self) -> String {
        const WORDS: [&str; 8] = ["id", "name", "SELECT ", "abc", "7x", " OR ", "", "0"];
        WORDS[self.below(WORDS.len() as u64) as usize].to_string()
    }

    /// A random expression, depth-bounded.
    fn expr(&mut self, depth: u32) -> String {
        if depth == 0 {
            return match self.below(5) {
                0 => self.below(100).to_string(),
                1 => format!("\"{}\"", self.word()),
                2 => self.var(),
                3 => format!("$_GET['{}']", ["a", "b"][self.below(2) as usize]),
                _ => format!("$arr[{}]", self.below(3)),
            };
        }
        match self.below(12) {
            0..=2 => {
                let (a, b) = (self.expr(depth - 1), self.expr(depth - 1));
                format!("({a} . {b})")
            }
            3..=4 => {
                let op = ["+", "-", "*"][self.below(3) as usize];
                let (a, b) = (self.expr(depth - 1), self.expr(depth - 1));
                format!("({a} {op} {b})")
            }
            5 => {
                let op = ["==", "!=", "<", ">", "==="][self.below(5) as usize];
                let (a, b) = (self.expr(depth - 1), self.expr(depth - 1));
                format!("({a} {op} {b})")
            }
            6 => {
                let op = ["&&", "||"][self.below(2) as usize];
                let (a, b) = (self.expr(depth - 1), self.expr(depth - 1));
                format!("({a} {op} {b})")
            }
            7 => {
                let f = ["intval", "trim", "strtolower", "strlen", "addslashes", "stripslashes"]
                    [self.below(6) as usize];
                let a = self.expr(depth - 1);
                format!("{f}({a})")
            }
            8 => {
                let (c, t, e) = (self.expr(depth - 1), self.expr(depth - 1), self.expr(depth - 1));
                format!("({c} ? {t} : {e})")
            }
            9 => format!("array({}, {})", self.expr(depth - 1), self.expr(depth - 1)),
            10 => format!("!{}", self.expr(depth - 1)),
            _ => format!("\"w_{{$v{}}}_x\"", self.below(4)),
        }
    }

    /// A random statement; `in_loop` permits break/continue.
    fn stmt(&mut self, in_loop: bool, depth: u32) -> String {
        self.budget = self.budget.saturating_sub(1);
        if self.budget == 0 {
            return format!("echo {};", self.expr(1));
        }
        let top = if depth > 0 { 10 } else { 7 };
        match self.below(top) {
            0..=1 => format!("{} = {};", self.var(), self.expr(2)),
            2 => {
                let op = [".=", "+="][self.below(2) as usize];
                format!("{} {op} {};", self.var(), self.expr(1))
            }
            3 => format!("$arr[{}] = {};", self.below(3), self.expr(1)),
            4 => format!("echo {};", self.expr(2)),
            5 => format!("$r = mysql_query(\"SELECT c FROM t WHERE k=\" . {});", self.expr(1)),
            6 => {
                if in_loop && self.below(4) == 0 {
                    ["break;", "continue;"][self.below(2) as usize].to_string()
                } else {
                    format!("{} = {} + 1;", self.var(), self.var())
                }
            }
            7 => {
                let cond = self.expr(1);
                let then = self.block(in_loop, depth - 1, 2);
                if self.below(2) == 0 {
                    let els = self.block(in_loop, depth - 1, 2);
                    format!("if ({cond}) {{ {then} }} else {{ {els} }}")
                } else {
                    format!("if ({cond}) {{ {then} }}")
                }
            }
            8 => {
                // Bounded while: a dedicated counter guarantees termination
                // without relying on the 1M iteration guard.
                let c = format!("$c{}", self.next_counter);
                self.next_counter += 1;
                let body = self.block(true, depth - 1, 2);
                format!("{c} = 0; while ({c} < {}) {{ {c} = {c} + 1; {body} }}", 1 + self.below(4))
            }
            _ => {
                let body = self.block(true, depth - 1, 2);
                let arr = format!("array({}, {}, {})", self.below(9), self.expr(0), self.below(9));
                if self.below(2) == 0 {
                    format!("foreach ({arr} as $k => $it) {{ echo $k; {body} }}")
                } else {
                    format!("foreach ({arr} as $it) {{ {body} }}")
                }
            }
        }
    }

    fn block(&mut self, in_loop: bool, depth: u32, max_stmts: u64) -> String {
        let n = 1 + self.below(max_stmts);
        (0..n).map(|_| self.stmt(in_loop, depth)).collect::<Vec<_>>().join(" ")
    }

    fn program(&mut self) -> String {
        let n = 3 + self.below(6);
        (0..n).map(|_| self.stmt(false, 2)).collect::<Vec<_>>().join("\n")
    }
}

/// Host answering from a deterministic playlist derived from the SQL text
/// itself, so both engines see identical worlds, including errors and
/// mid-run termination.
struct EchoHost {
    seen: Vec<String>,
    calls: u32,
    terminate_at: Option<u32>,
}

impl Host for EchoHost {
    fn query(&mut self, sql: &str) -> QueryOutcome {
        self.seen.push(sql.to_string());
        self.calls += 1;
        if Some(self.calls) == self.terminate_at {
            return QueryOutcome::Terminated;
        }
        // Deterministic per-text outcome: odd-length SQL errors, even-length
        // returns one row echoing the text length.
        if sql.len() % 2 == 1 {
            QueryOutcome::Error(format!("bad query len {}", sql.len()))
        } else {
            QueryOutcome::Rows(vec![vec![("c".to_string(), sql.len().to_string())]])
        }
    }

    fn query_prepared(&mut self, sql: &str, params: &[(String, String)]) -> QueryOutcome {
        self.seen.push(format!("P:{sql}:{params:?}"));
        QueryOutcome::Rows(vec![])
    }
}

#[derive(Debug, PartialEq)]
struct Surface {
    result: Result<(), PhpError>,
    output: String,
    queries: Vec<String>,
}

fn run_one(src: &str, engine_vm: bool, terminate_at: Option<u32>) -> Surface {
    let prog = parse_program(src).expect("generated program must parse");
    let mut host = EchoHost { seen: Vec::new(), calls: 0, terminate_at };
    let (result, output) = if engine_vm {
        let chunk = compile(&prog);
        let mut vm = Vm::new(&mut host);
        vm.set_get_param("a", "alpha'--");
        vm.set_get_param("b", "42");
        let r = vm.run(&chunk);
        (r, vm.output().to_string())
    } else {
        let mut interp = Interp::new(&mut host);
        interp.set_get_param("a", "alpha'--");
        interp.set_get_param("b", "42");
        let r = interp.run(&prog);
        (r, interp.output().to_string())
    };
    Surface { result, output, queries: host.seen }
}

fn diff_seed(seed: u64) {
    let src = Gen::new(seed).program();
    // Plain run, then a run where the host kills the request on its first
    // query — exercising Terminated propagation at a random program point.
    for terminate_at in [None, Some(1)] {
        let tw = run_one(&src, false, terminate_at);
        let vm = run_one(&src, true, terminate_at);
        assert_eq!(vm, tw, "engines diverged (seed {seed}, kill {terminate_at:?}) on:\n{src}");
    }
}

proptest! {
    /// VM and tree-walker agree on every generated program, both in
    /// normal operation and under host-initiated termination.
    #[test]
    fn vm_matches_tree_walker_on_random_programs(seed in 0u64..1_000_000_000) {
        diff_seed(seed);
    }
}

#[test]
fn vm_matches_tree_walker_on_fixed_seed_sweep() {
    // A dense deterministic sweep on top of the proptest sampling: the
    // first 400 seeds always run, so CI coverage does not depend on the
    // harness's RNG.
    for seed in 0..400 {
        diff_seed(seed);
    }
}
