//! PHP-subset AST → source emitter.
//!
//! The inverse of the parser up to formatting: for every program the
//! parser can produce, `parse_program(&emit_program(prog))` yields a
//! structurally equal program (`Vec<Stmt>` derives `PartialEq`). The
//! hardening pass ([`crate`]'s consumers rewrite sink calls in place)
//! relies on this to turn transformed ASTs back into plugin source that
//! the whole stack — fragment extraction, interpretation, query-model
//! inference — consumes exactly as if it had been hand-written.
//!
//! Round-trip corners the emitter handles explicitly:
//!
//! - A statement-level assignment *expression* (`Stmt::Expr(Expr::
//!   AssignExpr)`) is emitted with a leading paren, `($v = e);` — bare
//!   `$v = e;` would re-parse as the distinct `Stmt::Assign` form.
//! - Operands of unary/binary/ternary operators are parenthesized
//!   unless atomic, so emitted precedence always matches AST shape
//!   (parentheses are not represented in the AST, so this is free).
//! - Double-quoted strings escape `$` unconditionally; a literal `{`
//!   can then never form a `{$` interpolation opener.
//!
//! Non-goals: negative numeric literals and `PValue::Array`/`Resource`
//! literals cannot be produced by the parser (negation is a `Unary`
//! node, arrays are `Expr::ArrayLit`), so their emission is best-effort
//! and not round-trip exact.

use crate::ast::{AssignOp, BinOp, Expr, InterpPart, Stmt, UnaryOp};
use crate::value::{PKey, PValue};

/// Emits a whole program as parseable PHP-subset source (with `<?php`
/// open tag, one statement per line, 4-space indentation).
pub fn emit_program(prog: &[Stmt]) -> String {
    let mut out = String::from("<?php\n");
    for stmt in prog {
        emit_stmt(stmt, 0, &mut out);
    }
    out
}

/// Emits a single expression as source text.
pub fn emit_expr(expr: &Expr) -> String {
    let mut out = String::new();
    expr_into(expr, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn emit_stmt(stmt: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match stmt {
        Stmt::Expr(e) => {
            // `$v = e` at statement level parses as Stmt::Assign; keep
            // the AssignExpr node by forcing expression context.
            if matches!(e, Expr::AssignExpr { .. }) {
                out.push('(');
                expr_into(e, out);
                out.push(')');
            } else {
                expr_into(e, out);
            }
            out.push_str(";\n");
        }
        Stmt::Assign { var, indices, op, expr } => {
            out.push('$');
            out.push_str(var);
            for idx in indices {
                out.push('[');
                if let Some(i) = idx {
                    expr_into(i, out);
                }
                out.push(']');
            }
            out.push_str(match op {
                None => " = ",
                Some(AssignOp::Concat) => " .= ",
                Some(AssignOp::Add) => " += ",
                Some(AssignOp::Sub) => " -= ",
            });
            expr_into(expr, out);
            out.push_str(";\n");
        }
        Stmt::If { cond, then_branch, else_branch } => {
            out.push_str("if (");
            expr_into(cond, out);
            out.push_str(") ");
            emit_block(then_branch, level, out);
            if else_branch.is_empty() {
                out.push('\n');
            } else {
                out.push_str(" else ");
                emit_block(else_branch, level, out);
                out.push('\n');
            }
        }
        Stmt::While { cond, body } => {
            out.push_str("while (");
            expr_into(cond, out);
            out.push_str(") ");
            emit_block(body, level, out);
            out.push('\n');
        }
        Stmt::Foreach { array, key_var, val_var, body } => {
            out.push_str("foreach (");
            expr_into(array, out);
            out.push_str(" as ");
            if let Some(k) = key_var {
                out.push('$');
                out.push_str(k);
                out.push_str(" => ");
            }
            out.push('$');
            out.push_str(val_var);
            out.push_str(") ");
            emit_block(body, level, out);
            out.push('\n');
        }
        Stmt::Echo(items) => {
            out.push_str("echo ");
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(e, out);
            }
            out.push_str(";\n");
        }
        Stmt::Return(e) => {
            out.push_str("return");
            if let Some(e) = e {
                out.push(' ');
                expr_into(e, out);
            }
            out.push_str(";\n");
        }
        Stmt::Exit(e) => {
            out.push_str("exit");
            if let Some(e) = e {
                out.push('(');
                expr_into(e, out);
                out.push(')');
            }
            out.push_str(";\n");
        }
        Stmt::Break => out.push_str("break;\n"),
        Stmt::Continue => out.push_str("continue;\n"),
    }
}

fn emit_block(stmts: &[Stmt], level: usize, out: &mut String) {
    out.push_str("{\n");
    for s in stmts {
        emit_stmt(s, level + 1, out);
    }
    indent(level, out);
    out.push('}');
}

/// True when the expression re-parses as a single primary/postfix unit
/// and can appear as an operator operand without parentheses.
fn is_atom(expr: &Expr) -> bool {
    match expr {
        Expr::Var(_)
        | Expr::Interp(_)
        | Expr::Call { .. }
        | Expr::ArrayLit(_)
        | Expr::Isset(_)
        | Expr::Empty(_) => true,
        Expr::Index { base, .. } => is_atom(base),
        // Negative literals re-parse as Unary Neg; keep them wrapped.
        Expr::Lit(PValue::Int(i)) => *i >= 0,
        Expr::Lit(PValue::Float(f)) => *f >= 0.0,
        Expr::Lit(_) => true,
        _ => false,
    }
}

/// Emits `expr`, parenthesized unless atomic (operand position).
fn operand_into(expr: &Expr, out: &mut String) {
    if is_atom(expr) {
        expr_into(expr, out);
    } else {
        out.push('(');
        expr_into(expr, out);
        out.push(')');
    }
}

fn expr_into(expr: &Expr, out: &mut String) {
    match expr {
        Expr::Lit(v) => lit_into(v, out),
        Expr::Var(name) => {
            out.push('$');
            out.push_str(name);
        }
        Expr::Interp(parts) => {
            out.push('"');
            for part in parts {
                match part {
                    InterpPart::Lit(s) => push_dq_escaped(s, out),
                    InterpPart::Var(name) => {
                        out.push_str("{$");
                        out.push_str(name);
                        out.push('}');
                    }
                }
            }
            out.push('"');
        }
        Expr::Index { base, index } => {
            operand_into(base, out);
            out.push('[');
            expr_into(index, out);
            out.push(']');
        }
        Expr::Call { name, args } => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(a, out);
            }
            out.push(')');
        }
        Expr::Unary { op, expr } => {
            out.push_str(match op {
                UnaryOp::Not => "!",
                UnaryOp::Neg => "-",
                UnaryOp::Silence => "@",
            });
            operand_into(expr, out);
        }
        Expr::Binary { left, op, right } => {
            operand_into(left, out);
            out.push(' ');
            out.push_str(binop_text(*op));
            out.push(' ');
            operand_into(right, out);
        }
        Expr::Ternary { cond, then_val, else_val } => {
            operand_into(cond, out);
            match then_val {
                Some(t) => {
                    out.push_str(" ? ");
                    operand_into(t, out);
                    out.push_str(" : ");
                }
                None => out.push_str(" ?: "),
            }
            operand_into(else_val, out);
        }
        Expr::ArrayLit(entries) => {
            out.push_str("array(");
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if let Some(k) = key {
                    expr_into(k, out);
                    out.push_str(" => ");
                }
                expr_into(val, out);
            }
            out.push(')');
        }
        Expr::Isset(args) => {
            out.push_str("isset(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(a, out);
            }
            out.push(')');
        }
        Expr::Empty(e) => {
            out.push_str("empty(");
            expr_into(e, out);
            out.push(')');
        }
        Expr::AssignExpr { var, expr } => {
            out.push('$');
            out.push_str(var);
            out.push_str(" = ");
            expr_into(expr, out);
        }
    }
}

fn binop_text(op: BinOp) -> &'static str {
    match op {
        BinOp::Concat => ".",
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "==",
        BinOp::NotEq => "!=",
        BinOp::Identical => "===",
        BinOp::NotIdentical => "!==",
        BinOp::Lt => "<",
        BinOp::LtEq => "<=",
        BinOp::Gt => ">",
        BinOp::GtEq => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn lit_into(v: &PValue, out: &mut String) {
    match v {
        PValue::Null => out.push_str("null"),
        PValue::Bool(true) => out.push_str("true"),
        PValue::Bool(false) => out.push_str("false"),
        PValue::Int(i) => out.push_str(&i.to_string()),
        PValue::Float(f) => {
            if !f.is_finite() {
                out.push_str("0.0"); // unreachable from parsed ASTs
            } else if *f == f.trunc() {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        PValue::Str(s) => {
            out.push('\'');
            for ch in s.chars() {
                match ch {
                    '\\' => out.push_str("\\\\"),
                    '\'' => out.push_str("\\'"),
                    c => out.push(c),
                }
            }
            out.push('\'');
        }
        // Not producible by the parser: best-effort forms for debugging.
        PValue::Array(a) => {
            out.push_str("array(");
            for (i, (k, val)) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match k {
                    PKey::Int(n) => out.push_str(&n.to_string()),
                    PKey::Str(s) => lit_into(&PValue::Str(s.clone()), out),
                }
                out.push_str(" => ");
                lit_into(val, out);
            }
            out.push(')');
        }
        PValue::Resource(_) => out.push_str("null"),
    }
}

fn push_dq_escaped(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '$' => out.push_str("\\$"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn round_trip(src: &str) {
        let ast = parse_program(src).expect("source must parse");
        let emitted = emit_program(&ast);
        let reparsed = parse_program(&emitted)
            .unwrap_or_else(|e| panic!("emitted source failed to parse: {e}\n---\n{emitted}"));
        assert_eq!(ast, reparsed, "round-trip mismatch\n--- emitted ---\n{emitted}");
    }

    #[test]
    fn statements_round_trip() {
        round_trip("<?php $x = 1; $y .= 'a'; $z += 2; $w -= 3;");
        round_trip("<?php $a[] = 1; $a['k'] = 2; $a[0][1] = 3; $a[$i] = $b;");
        round_trip("<?php if ($x) { echo 'a'; } else { echo 'b', $y; }");
        round_trip("<?php if ($x) { echo 1; } elseif ($y) { echo 2; } else { echo 3; }");
        round_trip("<?php while ($i < 10) { $i += 1; if ($i == 5) { break; } continue; }");
        round_trip("<?php foreach ($rows as $r) { echo $r; }");
        round_trip("<?php foreach ($rows as $k => $v) { echo $k, $v; }");
        round_trip("<?php return; ");
        round_trip("<?php return $x + 1;");
        round_trip("<?php exit; ");
        round_trip("<?php exit('bye');");
        round_trip("<?php mysql_query($q);");
        round_trip("<?php $x;");
        round_trip("<?php $a[0];");
    }

    #[test]
    fn expressions_round_trip() {
        round_trip("<?php $q = \"SELECT * FROM t WHERE id=$id LIMIT 5\";");
        round_trip("<?php $q = \"a{$x}b\";");
        round_trip("<?php $q = \"esc \\\" \\$ \\\\ \\n end\";");
        round_trip("<?php $s = 'it\\'s \\\\ fine';");
        round_trip("<?php $x = 1 + 2 * 3 - 4 / 5 % 6;");
        round_trip("<?php $x = (1 + 2) * 3;");
        round_trip("<?php $x = -$y; $z = !$ok; $w = @f();");
        round_trip("<?php $x = - (1 + 2);");
        round_trip("<?php $b = $x == 1 && $y != 2 || $z === 'a' && $w !== null;");
        round_trip("<?php $b = $x < 1; $c = $x <= 1; $d = $x > 1; $e = $x >= 1;");
        round_trip("<?php $v = $cond ? 'yes' : 'no';");
        round_trip("<?php $v = $a ?: 'default';");
        round_trip("<?php $v = $a ? $b ? 1 : 2 : 3;");
        round_trip("<?php $a = array(1, 2, 'k' => 'v', $x => $y);");
        round_trip("<?php $a = [1, 'two', 3.5];");
        round_trip("<?php $b = isset($a, $c['k']); $e = empty($a);");
        round_trip("<?php $f = 2.0; $g = 0.5; $h = 123.25;");
        round_trip("<?php $t = true; $f = false; $n = null;");
        round_trip("<?php $x = f(g($a), $b . $c, 'lit');");
        round_trip("<?php $x = $rows[0]['name'];");
        round_trip("<?php $q = 'SELECT * FROM t WHERE id=' . $id . ' AND h=0';");
    }

    #[test]
    fn assign_expr_round_trips_in_expression_context() {
        // while (($row = mysql_fetch_row($r))) { ... } — the corpus idiom.
        round_trip("<?php while ($row = mysql_fetch_row($r)) { echo $row[0]; }");
        round_trip("<?php if ($r = mysql_query($q)) { echo 'ok'; }");
        // Statement-level AssignExpr must stay an AssignExpr, not become
        // a Stmt::Assign: emitted with forced parens.
        let ast = vec![Stmt::Expr(Expr::AssignExpr {
            var: "x".into(),
            expr: Box::new(Expr::Lit(PValue::Int(1))),
        })];
        let emitted = emit_program(&ast);
        assert_eq!(parse_program(&emitted).unwrap(), ast, "emitted: {emitted}");
    }

    #[test]
    fn interp_literal_braces_cannot_reopen_interpolation() {
        // `$` is escaped unconditionally, so `{` + Var part boundary can
        // never merge into `{$name}` of a *literal* dollar.
        let ast = vec![Stmt::Echo(vec![Expr::Interp(vec![
            InterpPart::Lit("{".into()),
            InterpPart::Var("x".into()),
            InterpPart::Lit("} ${literal} plain".into()),
        ])])];
        let emitted = emit_program(&ast);
        assert_eq!(parse_program(&emitted).unwrap(), ast, "emitted: {emitted}");
    }

    #[test]
    fn corpus_shaped_source_round_trips() {
        round_trip(
            r#"<?php
$id = $_GET['item'];
$r = mysql_query("SELECT id, name FROM tbl WHERE id=" . $id . " AND hidden=0");
if ($r) {
    while ($row = mysql_fetch_row($r)) {
        echo "<li>", $row[0], "</li>";
    }
} else {
    echo "db error: ", mysql_error();
}
"#,
        );
        round_trip(
            r#"<?php
$s = trim(stripslashes($_GET['q']));
$r = mysql_query("SELECT name, info FROM t WHERE hidden=0 AND name LIKE '%" . $s . "%' ORDER BY id");
echo "done";
"#,
        );
        round_trip(
            r#"<?php
$ids = $_GET['ids'];
$r = db_query("SELECT name FROM n WHERE id IN (:ids)", array(':ids' => $ids));
"#,
        );
    }
}
