//! Recursive-descent parser for the PHP subset.

use crate::ast::*;
use crate::lexer::{lex_php_spanned, LexError, PTok, StrPart};
use crate::span::Span;
use crate::value::PValue;
use std::fmt;

/// An error produced while parsing PHP source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhpParseError {
    /// Token index where the error occurred (best effort).
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for PhpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PHP parse error near token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for PhpParseError {}

impl From<LexError> for PhpParseError {
    fn from(e: LexError) -> Self {
        PhpParseError { at: 0, message: e.to_string() }
    }
}

/// Parses a PHP-subset script into a [`Program`].
///
/// # Errors
///
/// Returns [`PhpParseError`] on lex errors or constructs outside the
/// subset. Plugin sources in the testbed are authored against this subset.
///
/// # Examples
///
/// ```
/// use joza_phpsim::parser::parse_program;
///
/// let prog = parse_program(r#"
///     $id = intval($_GET['id']);
///     if ($id > 0) { mysql_query("SELECT * FROM t WHERE id=$id"); }
/// "#)?;
/// assert_eq!(prog.len(), 2);
/// # Ok::<(), joza_phpsim::parser::PhpParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, PhpParseError> {
    parse_program_spanned(src).map(|(prog, _)| prog)
}

/// Parses a PHP-subset script into a [`Program`] plus a byte-[`Span`]
/// table with one entry per statement, indexed in statement *preorder* —
/// the identical order [`crate::visit::walk_program`] assigns statement
/// ids, so `spans[id]` is the source range of the statement a visitor
/// sees as `id`.
///
/// # Errors
///
/// Same failure modes as [`parse_program`].
pub fn parse_program_spanned(src: &str) -> Result<(Program, Vec<Span>), PhpParseError> {
    let (toks, tok_spans) = lex_php_spanned(src)?;
    let mut p = PhpParser { toks, tok_spans, pos: 0, stmt_spans: Vec::new() };
    let mut out = Vec::new();
    while p.pos < p.toks.len() {
        out.push(p.stmt()?);
    }
    Ok((out, p.stmt_spans))
}

struct PhpParser {
    toks: Vec<PTok>,
    tok_spans: Vec<Span>,
    pos: usize,
    /// Statement spans in preorder; slots are pushed when a statement
    /// starts parsing and closed when it finishes.
    stmt_spans: Vec<Span>,
}

type PResult<T> = Result<T, PhpParseError>;

impl PhpParser {
    fn err(&self, message: impl Into<String>) -> PhpParseError {
        PhpParseError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<&PTok> {
        self.toks.get(self.pos)
    }

    fn at_op(&self, op: &str) -> bool {
        matches!(self.peek(), Some(PTok::Op(o)) if *o == op)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.at_op(op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> PResult<()> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{op}`, found {:?}", self.peek())))
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(PTok::Ident(i)) if i.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    /// Opens a preorder span slot whose `lo` is the start of the token at
    /// `tok`, returning the slot index for [`Self::end_stmt`].
    fn begin_stmt_at(&mut self, tok: usize) -> usize {
        let lo = self
            .tok_spans
            .get(tok)
            .map_or_else(|| self.tok_spans.last().map_or(0, |s| s.hi), |s| s.lo);
        self.stmt_spans.push(Span::new(lo, lo));
        self.stmt_spans.len() - 1
    }

    /// Closes a span slot at the end of the previously consumed token.
    fn end_stmt(&mut self, slot: usize) {
        let hi = self
            .pos
            .checked_sub(1)
            .and_then(|i| self.tok_spans.get(i))
            .map_or(self.stmt_spans[slot].lo, |s| s.hi);
        self.stmt_spans[slot].hi = hi.max(self.stmt_spans[slot].lo);
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let slot = self.begin_stmt_at(self.pos);
        let stmt = self.stmt_inner()?;
        self.end_stmt(slot);
        Ok(stmt)
    }

    fn stmt_inner(&mut self) -> PResult<Stmt> {
        if self.eat_kw("if") {
            return self.if_stmt();
        }
        if self.eat_kw("while") {
            self.expect_op("(")?;
            let cond = self.expr()?;
            self.expect_op(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_kw("foreach") {
            self.expect_op("(")?;
            let array = self.expr()?;
            self.expect_kw("as")?;
            let first = self.var_name()?;
            let (key_var, val_var) =
                if self.eat_op("=>") { (Some(first), self.var_name()?) } else { (None, first) };
            self.expect_op(")")?;
            let body = self.block_or_single()?;
            return Ok(Stmt::Foreach { array, key_var, val_var, body });
        }
        if self.eat_kw("echo") {
            let mut exprs = vec![self.expr()?];
            while self.eat_op(",") {
                exprs.push(self.expr()?);
            }
            self.expect_op(";")?;
            return Ok(Stmt::Echo(exprs));
        }
        if self.eat_kw("return") {
            let value = if self.at_op(";") { None } else { Some(self.expr()?) };
            self.expect_op(";")?;
            return Ok(Stmt::Return(value));
        }
        if self.eat_kw("exit") || self.eat_kw("die") {
            let value = if self.eat_op("(") {
                let v = if self.at_op(")") { None } else { Some(self.expr()?) };
                self.expect_op(")")?;
                v
            } else {
                None
            };
            self.expect_op(";")?;
            return Ok(Stmt::Exit(value));
        }
        if self.eat_kw("break") {
            self.expect_op(";")?;
            return Ok(Stmt::Break);
        }
        if self.eat_kw("continue") {
            self.expect_op(";")?;
            return Ok(Stmt::Continue);
        }
        // Assignment: $var [index]* (=|.=|+=|-=) expr ;
        if let Some(PTok::Var(_)) = self.peek() {
            if let Some(stmt) = self.try_assignment()? {
                return Ok(stmt);
            }
        }
        // Fallback: expression statement.
        let e = self.expr()?;
        self.expect_op(";")?;
        Ok(Stmt::Expr(e))
    }

    /// Attempts to parse an assignment statement; rewinds and returns
    /// `Ok(None)` when the `$var…` turns out to be a plain expression.
    fn try_assignment(&mut self) -> PResult<Option<Stmt>> {
        let save = self.pos;
        let var = match self.peek() {
            Some(PTok::Var(v)) => v.clone(),
            _ => return Ok(None),
        };
        self.pos += 1;
        let mut indices: Vec<Option<Expr>> = Vec::new();
        while self.eat_op("[") {
            if self.eat_op("]") {
                indices.push(None);
            } else {
                let idx = self.expr()?;
                self.expect_op("]")?;
                indices.push(Some(idx));
            }
        }
        let op = if self.eat_op("=") {
            None
        } else if self.eat_op(".=") {
            Some(AssignOp::Concat)
        } else if self.eat_op("+=") {
            Some(AssignOp::Add)
        } else if self.eat_op("-=") {
            Some(AssignOp::Sub)
        } else {
            self.pos = save;
            return Ok(None);
        };
        let expr = self.expr()?;
        self.expect_op(";")?;
        Ok(Some(Stmt::Assign { var, indices, op, expr }))
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        self.expect_op("(")?;
        let cond = self.expr()?;
        self.expect_op(")")?;
        let then_branch = self.block_or_single()?;
        let else_branch = if self.at_kw("elseif") {
            let kw = self.pos;
            self.pos += 1;
            vec![self.nested_if(kw)?]
        } else if self.eat_kw("else") {
            if self.at_kw("if") {
                let kw = self.pos;
                self.pos += 1;
                vec![self.nested_if(kw)?]
            } else {
                self.block_or_single()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_branch, else_branch })
    }

    /// An `elseif`/`else if` desugars into a nested `If` *statement* in
    /// the else branch; it needs its own preorder span slot (anchored at
    /// the keyword token) because it is not parsed through [`Self::stmt`].
    fn nested_if(&mut self, kw_tok: usize) -> PResult<Stmt> {
        let slot = self.begin_stmt_at(kw_tok);
        let stmt = self.if_stmt()?;
        self.end_stmt(slot);
        Ok(stmt)
    }

    fn block_or_single(&mut self) -> PResult<Vec<Stmt>> {
        if self.eat_op("{") {
            let mut body = Vec::new();
            while !self.eat_op("}") {
                if self.peek().is_none() {
                    return Err(self.err("unterminated block"));
                }
                body.push(self.stmt()?);
            }
            Ok(body)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn var_name(&mut self) -> PResult<String> {
        match self.peek() {
            Some(PTok::Var(v)) => {
                let v = v.clone();
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err("expected variable")),
        }
    }

    // ----- expressions -----

    fn expr(&mut self) -> PResult<Expr> {
        // Assignment expression: `$var = expr` (supports the idiomatic
        // `while ($row = mysql_fetch_assoc($r))`).
        if let Some(PTok::Var(v)) = self.peek() {
            if matches!(self.toks.get(self.pos + 1), Some(PTok::Op("="))) {
                let var = v.clone();
                self.pos += 2;
                let rhs = self.expr()?;
                return Ok(Expr::AssignExpr { var, expr: Box::new(rhs) });
            }
        }
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.or_expr()?;
        if self.eat_op("?") {
            if self.eat_op(":") {
                let else_val = self.ternary()?;
                return Ok(Expr::Ternary {
                    cond: Box::new(cond),
                    then_val: None,
                    else_val: Box::new(else_val),
                });
            }
            let then_val = self.expr()?;
            self.expect_op(":")?;
            let else_val = self.ternary()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_val: Some(Box::new(then_val)),
                else_val: Box::new(else_val),
            });
        }
        Ok(cond)
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_op("||") || self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut left = self.equality()?;
        while self.eat_op("&&") || self.eat_kw("and") {
            let right = self.equality()?;
            left = Expr::Binary { left: Box::new(left), op: BinOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn equality(&mut self) -> PResult<Expr> {
        let mut left = self.relational()?;
        loop {
            let op = if self.eat_op("===") {
                BinOp::Identical
            } else if self.eat_op("!==") {
                BinOp::NotIdentical
            } else if self.eat_op("==") {
                BinOp::Eq
            } else if self.eat_op("!=") || self.eat_op("<>") {
                BinOp::NotEq
            } else {
                break;
            };
            let right = self.relational()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn relational(&mut self) -> PResult<Expr> {
        let mut left = self.additive()?;
        loop {
            let op = if self.eat_op("<=") {
                BinOp::LtEq
            } else if self.eat_op(">=") {
                BinOp::GtEq
            } else if self.eat_op("<") {
                BinOp::Lt
            } else if self.eat_op(">") {
                BinOp::Gt
            } else {
                break;
            };
            let right = self.additive()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_op(".") {
                BinOp::Concat
            } else if self.eat_op("+") {
                BinOp::Add
            } else if self.eat_op("-") {
                BinOp::Sub
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_op("*") {
                BinOp::Mul
            } else if self.eat_op("/") {
                BinOp::Div
            } else if self.eat_op("%") {
                BinOp::Mod
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.eat_op("!") {
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(self.unary()?) });
        }
        if self.eat_op("-") {
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(self.unary()?) });
        }
        if self.eat_op("@") {
            return Ok(Expr::Unary { op: UnaryOp::Silence, expr: Box::new(self.unary()?) });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut base = self.primary()?;
        while self.eat_op("[") {
            let index = self.expr()?;
            self.expect_op("]")?;
            base = Expr::Index { base: Box::new(base), index: Box::new(index) };
        }
        Ok(base)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let tok = self.peek().cloned().ok_or_else(|| self.err("unexpected end of input"))?;
        match tok {
            PTok::Var(name) => {
                self.pos += 1;
                Ok(Expr::Var(name))
            }
            PTok::Int(i) => {
                self.pos += 1;
                Ok(Expr::Lit(PValue::Int(i)))
            }
            PTok::Float(f) => {
                self.pos += 1;
                Ok(Expr::Lit(PValue::Float(f)))
            }
            PTok::Str(parts) => {
                self.pos += 1;
                if parts.iter().all(|p| matches!(p, StrPart::Lit(_))) {
                    let joined: String = parts
                        .iter()
                        .map(|p| match p {
                            StrPart::Lit(s) => s.as_str(),
                            StrPart::Interp(_) => unreachable!(),
                        })
                        .collect();
                    Ok(Expr::Lit(PValue::Str(joined)))
                } else {
                    Ok(Expr::Interp(
                        parts
                            .into_iter()
                            .map(|p| match p {
                                StrPart::Lit(s) => InterpPart::Lit(s),
                                StrPart::Interp(v) => InterpPart::Var(v),
                            })
                            .collect(),
                    ))
                }
            }
            PTok::Op("(") => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect_op(")")?;
                Ok(inner)
            }
            PTok::Op("[") => {
                self.pos += 1;
                self.array_lit("]")
            }
            PTok::Ident(name) => {
                self.pos += 1;
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => Ok(Expr::Lit(PValue::Bool(true))),
                    "false" => Ok(Expr::Lit(PValue::Bool(false))),
                    "null" => Ok(Expr::Lit(PValue::Null)),
                    "array" => {
                        self.expect_op("(")?;
                        self.array_lit(")")
                    }
                    "isset" => {
                        self.expect_op("(")?;
                        let mut args = vec![self.expr()?];
                        while self.eat_op(",") {
                            args.push(self.expr()?);
                        }
                        self.expect_op(")")?;
                        Ok(Expr::Isset(args))
                    }
                    "empty" => {
                        self.expect_op("(")?;
                        let e = self.expr()?;
                        self.expect_op(")")?;
                        Ok(Expr::Empty(Box::new(e)))
                    }
                    _ => {
                        self.expect_op("(")?;
                        let mut args = Vec::new();
                        if !self.at_op(")") {
                            args.push(self.expr()?);
                            while self.eat_op(",") {
                                args.push(self.expr()?);
                            }
                        }
                        self.expect_op(")")?;
                        Ok(Expr::Call { name, args })
                    }
                }
            }
            other => Err(self.err(format!("unexpected token {other}"))),
        }
    }

    fn array_lit(&mut self, close: &str) -> PResult<Expr> {
        let mut items = Vec::new();
        if !self.at_op(close) {
            loop {
                let first = self.expr()?;
                if self.eat_op("=>") {
                    let value = self.expr()?;
                    items.push((Some(first), value));
                } else {
                    items.push((None, first));
                }
                if !self.eat_op(",") {
                    break;
                }
                if self.at_op(close) {
                    break; // trailing comma
                }
            }
        }
        self.expect_op(close)?;
        Ok(Expr::ArrayLit(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Stmt {
        let mut prog = parse_program(src).unwrap();
        assert_eq!(prog.len(), 1, "expected one stmt in {src}");
        prog.remove(0)
    }

    #[test]
    fn simple_assignment() {
        match parse_one("$x = 5;") {
            Stmt::Assign { var, indices, op, expr } => {
                assert_eq!(var, "x");
                assert!(indices.is_empty());
                assert!(op.is_none());
                assert_eq!(expr, Expr::Lit(PValue::Int(5)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn concat_assignment() {
        match parse_one("$q .= ' LIMIT 5';") {
            Stmt::Assign { op: Some(AssignOp::Concat), .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn superglobal_index() {
        match parse_one("$id = $_GET['id'];") {
            Stmt::Assign { expr: Expr::Index { base, index }, .. } => {
                assert_eq!(*base, Expr::Var("_GET".into()));
                assert_eq!(*index, Expr::Lit(PValue::Str("id".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn array_append() {
        match parse_one("$a[] = 1;") {
            Stmt::Assign { indices, .. } => assert_eq!(indices, vec![None]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_array_assign() {
        match parse_one("$a['x'][2] = 1;") {
            Stmt::Assign { indices, .. } => assert_eq!(indices.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_elseif_else() {
        let stmt = parse_one("if ($a) { $x = 1; } elseif ($b) { $x = 2; } else { $x = 3; }");
        match stmt {
            Stmt::If { else_branch, .. } => {
                assert_eq!(else_branch.len(), 1);
                assert!(matches!(else_branch[0], Stmt::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn while_and_foreach() {
        parse_one("while ($row = mysql_fetch_assoc($r)) { $out .= $row['id']; }");
        parse_one("foreach ($items as $k => $v) { $q .= $v; }");
        parse_one("foreach ($items as $v) $q .= $v;");
    }

    #[test]
    fn function_call_expr_stmt() {
        match parse_one("mysql_query($q);") {
            Stmt::Expr(Expr::Call { name, args }) => {
                assert_eq!(name, "mysql_query");
                assert_eq!(args.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interpolated_string_expr() {
        match parse_one(r#"$q = "SELECT * WHERE id=$id";"#) {
            Stmt::Assign { expr: Expr::Interp(parts), .. } => {
                assert_eq!(parts.len(), 2);
                assert_eq!(parts[1], InterpPart::Var("id".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ternary_and_short_ternary() {
        parse_one("$x = $a ? 1 : 2;");
        parse_one("$x = $a ?: 'default';");
    }

    #[test]
    fn echo_multiple() {
        match parse_one("echo $a, 'x', 3;") {
            Stmt::Echo(exprs) => assert_eq!(exprs.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exit_and_die() {
        assert!(matches!(parse_one("exit;"), Stmt::Exit(None)));
        assert!(matches!(parse_one("die('msg');"), Stmt::Exit(Some(_))));
    }

    #[test]
    fn array_literals() {
        parse_one("$a = array(1, 2, 3);");
        parse_one("$a = array('k' => 'v', 'k2' => 2);");
        parse_one("$a = ['x', 'y',];");
    }

    #[test]
    fn isset_empty() {
        parse_one("$x = isset($_GET['id']) ? $_GET['id'] : 0;");
        parse_one("if (empty($x)) { $x = 1; }");
    }

    #[test]
    fn precedence_concat_vs_compare() {
        // `.` binds tighter than `==`.
        match parse_one("$x = $a . $b == $c;") {
            Stmt::Assign { expr: Expr::Binary { op: BinOp::Eq, .. }, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assignment_in_while_condition() {
        // `$row = f()` inside a condition is an expression in real PHP; our
        // subset models the common `while ($row = mysql_fetch_assoc(...))`
        // via a dedicated hack-free path: it parses as Call wrapped in
        // assignment-expression. Verify it parses.
        let prog = parse_program("while ($row = mysql_fetch_assoc($r)) { echo $row['a']; }");
        assert!(prog.is_ok());
    }

    #[test]
    fn errors() {
        assert!(parse_program("$x = ;").is_err());
        assert!(parse_program("if ($a { }").is_err());
        assert!(parse_program("$x = 5").is_err()); // missing semicolon
        assert!(parse_program("foo(;").is_err());
    }
}
