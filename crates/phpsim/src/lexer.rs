//! Lexer for the PHP subset.
//!
//! Input is a plain PHP script (an optional `<?php` opener and `?>` closer
//! are tolerated and skipped). Double-quoted strings are lexed into
//! *parts* — literal runs and `$variable` interpolations — because both the
//! interpreter (concatenation semantics) and the fragment extractor
//! (placeholder splitting, §IV-A) need the split.

use crate::span::Span;
use std::fmt;

/// One component of a double-quoted string literal.
#[derive(Debug, Clone, PartialEq)]
pub enum StrPart {
    /// A literal run of characters (escapes already processed).
    Lit(String),
    /// An interpolated `$name` or `{$name}` variable.
    Interp(String),
}

/// A lexed PHP token.
#[derive(Debug, Clone, PartialEq)]
pub enum PTok {
    /// `$name`.
    Var(String),
    /// A bare identifier or keyword (case preserved; keywords are matched
    /// case-insensitively by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// A string literal, already split into parts. Single-quoted strings
    /// always produce a single `Lit` part.
    Str(Vec<StrPart>),
    /// An operator or punctuation lexeme (`.`, `.=`, `==`, `(`, `;`, …).
    Op(&'static str),
}

impl fmt::Display for PTok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PTok::Var(v) => write!(f, "${v}"),
            PTok::Ident(i) => f.write_str(i),
            PTok::Int(i) => write!(f, "{i}"),
            PTok::Float(x) => write!(f, "{x}"),
            PTok::Str(_) => f.write_str("<string>"),
            PTok::Op(o) => f.write_str(o),
        }
    }
}

/// An error produced while lexing PHP source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PHP lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Operators, longest first so that maximal munch works.
static OPS: &[&str] = &[
    "===", "!==", "<=>", "<<=", ">>=", "**=", "&&", "||", "==", "!=", "<>", "<=", ">=", "=>", "->",
    "++", "--", "+=", "-=", "*=", "/=", ".=", "%=", "??", "<<", ">>", "(", ")", "[", "]", "{", "}",
    ",", ";", ".", "+", "-", "*", "/", "%", "=", "<", ">", "!", "?", ":", "&", "|", "^", "~", "@",
];

/// Lexes PHP source into tokens.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings or unexpected bytes —
/// plugin sources are authored, not attacker-controlled, so strictness is
/// appropriate here (unlike the SQL lexer, which must be total).
pub fn lex_php(src: &str) -> Result<Vec<PTok>, LexError> {
    lex_php_spanned(src).map(|(toks, _)| toks)
}

/// Lexes PHP source into tokens plus a parallel table of byte [`Span`]s
/// (one per token, same index).
///
/// # Errors
///
/// Same failure modes as [`lex_php`].
pub fn lex_php_spanned(src: &str) -> Result<(Vec<PTok>, Vec<Span>), LexError> {
    let mut lx = PhpLexer { src: src.as_bytes(), pos: 0, out: Vec::new(), spans: Vec::new() };
    lx.skip_open_tag();
    lx.run(src)?;
    debug_assert_eq!(lx.out.len(), lx.spans.len());
    Ok((lx.out, lx.spans))
}

struct PhpLexer<'a> {
    src: &'a [u8],
    pos: usize,
    out: Vec<PTok>,
    spans: Vec<Span>,
}

impl<'a> PhpLexer<'a> {
    fn skip_open_tag(&mut self) {
        let rest = &self.src[self.pos..];
        if rest.starts_with(b"<?php") {
            self.pos += 5;
        } else if rest.starts_with(b"<?") {
            self.pos += 2;
        }
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError { offset: self.pos, message: message.into() }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn run(&mut self, src_str: &str) -> Result<(), LexError> {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            let tok_start = self.pos;
            let toks_before = self.out.len();
            match b {
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'?' if self.peek(1) == Some(b'>') => {
                    // Closing tag: ignore the rest (no HTML mode).
                    self.pos = self.src.len();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'#' => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment()?,
                b'$' => self.variable()?,
                b'\'' => self.single_quoted()?,
                b'"' => self.double_quoted()?,
                b'0'..=b'9' => self.number(),
                b'.' if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => self.number(),
                _ if b.is_ascii_alphabetic() || b == b'_' => self.ident(src_str),
                _ => self.operator()?,
            }
            // Every arm pushes at most one token; give it the byte range
            // just consumed.
            if self.out.len() > toks_before {
                self.spans.push(Span::new(tok_start, self.pos));
            }
        }
        Ok(())
    }

    fn line_comment(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        self.pos += 2;
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                self.pos += 2;
                return Ok(());
            }
            self.pos += 1;
        }
        self.pos = start;
        Err(self.err("unterminated block comment"))
    }

    fn variable(&mut self) -> Result<(), LexError> {
        self.pos += 1; // `$`
        let start = self.pos;
        while self.pos < self.src.len() && is_ident_byte(self.src[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected variable name after $"));
        }
        let name = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("non-UTF8 variable name"))?
            .to_string();
        self.out.push(PTok::Var(name));
        Ok(())
    }

    fn single_quoted(&mut self) -> Result<(), LexError> {
        self.pos += 1;
        let mut lit = String::new();
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b == b'\\' {
                match self.peek(1) {
                    Some(b'\'') => {
                        lit.push('\'');
                        self.pos += 2;
                    }
                    Some(b'\\') => {
                        lit.push('\\');
                        self.pos += 2;
                    }
                    _ => {
                        lit.push('\\');
                        self.pos += 1;
                    }
                }
            } else if b == b'\'' {
                self.pos += 1;
                self.out.push(PTok::Str(vec![StrPart::Lit(lit)]));
                return Ok(());
            } else {
                lit.push(b as char);
                self.pos += 1;
            }
        }
        Err(self.err("unterminated single-quoted string"))
    }

    fn double_quoted(&mut self) -> Result<(), LexError> {
        self.pos += 1;
        let mut parts: Vec<StrPart> = Vec::new();
        let mut lit = String::new();
        let flush = |parts: &mut Vec<StrPart>, lit: &mut String| {
            if !lit.is_empty() {
                parts.push(StrPart::Lit(std::mem::take(lit)));
            }
        };
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            match b {
                b'\\' => {
                    let esc = self.peek(1);
                    self.pos += 2;
                    match esc {
                        Some(b'n') => lit.push('\n'),
                        Some(b't') => lit.push('\t'),
                        Some(b'r') => lit.push('\r'),
                        Some(b'"') => lit.push('"'),
                        Some(b'\\') => lit.push('\\'),
                        Some(b'$') => lit.push('$'),
                        Some(other) => {
                            lit.push('\\');
                            lit.push(other as char);
                        }
                        None => return Err(self.err("unterminated string escape")),
                    }
                }
                b'$' if self.peek(1).is_some_and(is_ident_start_byte) => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.src.len() && is_ident_byte(self.src[self.pos]) {
                        self.pos += 1;
                    }
                    let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    flush(&mut parts, &mut lit);
                    parts.push(StrPart::Interp(name));
                }
                b'{' if self.peek(1) == Some(b'$') => {
                    // `{$name}` form.
                    self.pos += 2;
                    let start = self.pos;
                    while self.pos < self.src.len() && is_ident_byte(self.src[self.pos]) {
                        self.pos += 1;
                    }
                    let name = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    if self.peek(0) != Some(b'}') {
                        return Err(self.err("expected } after {$var"));
                    }
                    self.pos += 1;
                    flush(&mut parts, &mut lit);
                    parts.push(StrPart::Interp(name));
                }
                b'"' => {
                    self.pos += 1;
                    flush(&mut parts, &mut lit);
                    self.out.push(PTok::Str(parts));
                    return Ok(());
                }
                _ => {
                    lit.push(b as char);
                    self.pos += 1;
                }
            }
        }
        Err(self.err("unterminated double-quoted string"))
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut is_float = false;
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_digit() {
                self.pos += 1;
            } else if b == b'.' && !is_float && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("0");
        if is_float {
            self.out.push(PTok::Float(text.parse().unwrap_or(0.0)));
        } else {
            self.out.push(PTok::Int(text.parse().unwrap_or(0)));
        }
    }

    fn ident(&mut self, src_str: &str) {
        let start = self.pos;
        while self.pos < self.src.len() && is_ident_byte(self.src[self.pos]) {
            self.pos += 1;
        }
        self.out.push(PTok::Ident(src_str[start..self.pos].to_string()));
    }

    fn operator(&mut self) -> Result<(), LexError> {
        let rest = &self.src[self.pos..];
        for op in OPS {
            if rest.starts_with(op.as_bytes()) {
                self.pos += op.len();
                self.out.push(PTok::Op(op));
                return Ok(());
            }
        }
        Err(self.err(format!("unexpected byte {:?}", rest[0] as char)))
    }
}

fn is_ident_start_byte(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_assignment() {
        let toks = lex_php("$x = 5;").unwrap();
        assert_eq!(toks, vec![PTok::Var("x".into()), PTok::Op("="), PTok::Int(5), PTok::Op(";")]);
    }

    #[test]
    fn open_close_tags_skipped() {
        let toks = lex_php("<?php $x = 1; ?>").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn single_quoted_no_interpolation() {
        let toks = lex_php(r"$q = 'WHERE id=$id';").unwrap();
        assert_eq!(toks[2], PTok::Str(vec![StrPart::Lit("WHERE id=$id".into())]));
    }

    #[test]
    fn single_quoted_escapes() {
        let toks = lex_php(r"$q = 'it\'s \\ \n';").unwrap();
        // `\n` stays literal in single quotes.
        assert_eq!(toks[2], PTok::Str(vec![StrPart::Lit(r"it's \ \n".into())]));
    }

    #[test]
    fn double_quoted_interpolation_splits() {
        let toks = lex_php(r#"$q = "SELECT * FROM t WHERE id=$id LIMIT 5";"#).unwrap();
        assert_eq!(
            toks[2],
            PTok::Str(vec![
                StrPart::Lit("SELECT * FROM t WHERE id=".into()),
                StrPart::Interp("id".into()),
                StrPart::Lit(" LIMIT 5".into()),
            ])
        );
    }

    #[test]
    fn braced_interpolation() {
        let toks = lex_php(r#"$q = "a{$x}b";"#).unwrap();
        assert_eq!(
            toks[2],
            PTok::Str(vec![
                StrPart::Lit("a".into()),
                StrPart::Interp("x".into()),
                StrPart::Lit("b".into()),
            ])
        );
    }

    #[test]
    fn double_quoted_escapes() {
        let toks = lex_php(r#"$q = "a\"b\n\$x";"#).unwrap();
        assert_eq!(toks[2], PTok::Str(vec![StrPart::Lit("a\"b\n$x".into())]));
    }

    #[test]
    fn comments_skipped() {
        let toks = lex_php("// line\n# hash\n/* block */ $x = 1;").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn array_access_tokens() {
        let toks = lex_php("$id = $_GET['id'];").unwrap();
        assert_eq!(toks[0], PTok::Var("id".into()));
        assert_eq!(toks[2], PTok::Var("_GET".into()));
        assert_eq!(toks[3], PTok::Op("["));
    }

    #[test]
    fn operators_maximal_munch() {
        let toks = lex_php("$a .= $b === $c;").unwrap();
        assert_eq!(toks[1], PTok::Op(".="));
        assert_eq!(toks[3], PTok::Op("==="));
    }

    #[test]
    fn concat_vs_float() {
        let toks = lex_php("$a = $b . 'x'; $c = 1.5;").unwrap();
        assert!(toks.contains(&PTok::Op(".")));
        assert!(toks.contains(&PTok::Float(1.5)));
    }

    #[test]
    fn errors() {
        assert!(lex_php("$q = 'unterminated").is_err());
        assert!(lex_php("$q = \"unterminated").is_err());
        assert!(lex_php("/* unterminated").is_err());
        assert!(lex_php("$ = 5;").is_err());
    }

    #[test]
    fn spans_cover_tokens() {
        let src = "<?php $x = 'abc';";
        let (toks, spans) = lex_php_spanned(src).unwrap();
        assert_eq!(toks.len(), spans.len());
        assert_eq!(spans[0].slice(src), "$x");
        assert_eq!(spans[1].slice(src), "=");
        assert_eq!(spans[2].slice(src), "'abc'");
        assert_eq!(spans[3].slice(src), ";");
        // Spans are monotonically non-overlapping.
        for w in spans.windows(2) {
            assert!(w[0].hi <= w[1].lo);
        }
    }

    #[test]
    fn arrow_and_ternary() {
        let toks = lex_php("$a = $c ? $x : $y; $m => $n;").unwrap();
        assert!(toks.contains(&PTok::Op("?")));
        assert!(toks.contains(&PTok::Op(":")));
        assert!(toks.contains(&PTok::Op("=>")));
    }
}
