#![warn(missing_docs)]
//! PHP-subset interpreter and string-fragment extraction for Joza.
//!
//! The Joza paper protects *PHP web applications*: WordPress plus 50
//! vulnerable plugins. Its PTI component depends on a property of the
//! subject program — the string literals extracted from the program's
//! source are exactly the trusted constituents of the queries the program
//! builds at runtime (§III-B, §IV-A). Reproducing that property faithfully
//! requires actually *executing* application source, so this crate
//! implements a small PHP interpreter:
//!
//! * [`lexer`]/[`parser`] — a PHP-subset front end (variables, arrays,
//!   superglobals, string interpolation, `if`/`while`/`foreach`, function
//!   calls);
//! * [`interp`] — a tree-walking evaluator with PHP's type juggling, wired
//!   to a [`Host`] that receives the `mysql_query` calls
//!   (the web-app framework routes those through Joza and the database);
//! * [`builtins`] — the PHP standard-library subset the testbed plugins
//!   use, including the input transformations NTI evasion exploits
//!   (`addslashes` — magic quotes, `trim`, `base64_decode`, `urldecode`,
//!   `str_replace`, `preg_replace` character classes, `sprintf`, …);
//! * [`mod@compile`]/[`vm`] — a bytecode compiler and stack VM over the same
//!   AST and [`Host`]: the serving engine. The tree-walker stays as the
//!   differential oracle (bit-identical output/queries/errors, pinned by
//!   full-corpus replay and random-program differential tests);
//! * [`fragments`] — the installer's fragment extractor: string literals
//!   are collected from source text, interpolated strings and format
//!   strings are split at placeholders, and only fragments containing at
//!   least one SQL token are retained (§IV-A).
//!
//! # Examples
//!
//! ```
//! use joza_phpsim::interp::{Interp, Host, QueryOutcome};
//! use joza_phpsim::parser::parse_program;
//! use joza_phpsim::value::PValue;
//!
//! struct Recorder(Vec<String>);
//! impl Host for Recorder {
//!     fn query(&mut self, sql: &str) -> QueryOutcome {
//!         self.0.push(sql.to_string());
//!         QueryOutcome::Rows(vec![])
//!     }
//! }
//!
//! let src = r#"
//!     $id = $_GET['id'];
//!     $q = "SELECT * FROM records WHERE ID=" . $id . " LIMIT 5";
//!     mysql_query($q);
//! "#;
//! let prog = parse_program(src)?;
//! let mut host = Recorder(Vec::new());
//! let mut interp = Interp::new(&mut host);
//! interp.set_get_param("id", "7");
//! interp.run(&prog)?;
//! assert_eq!(host.0, ["SELECT * FROM records WHERE ID=7 LIMIT 5"]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod builtins;
pub mod compile;
pub mod cost;
pub mod emit;
pub mod fragments;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod value;
pub mod visit;
pub mod vm;

pub use compile::{compile, Chunk};
pub use emit::{emit_expr, emit_program};
pub use fragments::extract_fragments;
pub use interp::{Host, Interp, PhpError, QueryOutcome};
pub use parser::{parse_program, parse_program_spanned};
pub use span::Span;
pub use value::PValue;
pub use vm::Vm;
