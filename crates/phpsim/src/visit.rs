//! Preorder AST walking with stable statement ids.
//!
//! [`walk_program`] assigns every statement a preorder id — the parent
//! before its children, `then` branch before `else`, bodies in textual
//! order — which is exactly the order
//! [`crate::parser::parse_program_spanned`] emits its span table in, so
//! `spans[id]` maps a visited statement back to source text.

use crate::ast::{Expr, Program, Stmt};

/// Visitor over statements (preorder) and the expressions inside them.
///
/// All methods have no-op defaults; implement only what you need.
pub trait Visitor {
    /// Called for every statement in preorder with its stable id.
    fn visit_stmt(&mut self, _id: usize, _stmt: &Stmt) {}

    /// Called for every expression, preorder within its statement. `stmt_id`
    /// is the id of the enclosing statement.
    fn visit_expr(&mut self, _stmt_id: usize, _expr: &Expr) {}
}

/// Walks a program, assigning preorder statement ids; returns the total
/// number of statements visited.
pub fn walk_program<V: Visitor>(prog: &Program, v: &mut V) -> usize {
    let mut next = 0usize;
    for stmt in prog {
        walk_stmt(stmt, v, &mut next);
    }
    next
}

fn walk_stmt<V: Visitor>(stmt: &Stmt, v: &mut V, next: &mut usize) {
    let id = *next;
    *next += 1;
    v.visit_stmt(id, stmt);
    match stmt {
        Stmt::Expr(e) => walk_expr(e, id, v),
        Stmt::Assign { indices, expr, .. } => {
            for idx in indices.iter().flatten() {
                walk_expr(idx, id, v);
            }
            walk_expr(expr, id, v);
        }
        Stmt::If { cond, then_branch, else_branch } => {
            walk_expr(cond, id, v);
            for s in then_branch {
                walk_stmt(s, v, next);
            }
            for s in else_branch {
                walk_stmt(s, v, next);
            }
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, id, v);
            for s in body {
                walk_stmt(s, v, next);
            }
        }
        Stmt::Foreach { array, body, .. } => {
            walk_expr(array, id, v);
            for s in body {
                walk_stmt(s, v, next);
            }
        }
        Stmt::Echo(exprs) => {
            for e in exprs {
                walk_expr(e, id, v);
            }
        }
        Stmt::Return(value) | Stmt::Exit(value) => {
            if let Some(e) = value {
                walk_expr(e, id, v);
            }
        }
        Stmt::Break | Stmt::Continue => {}
    }
}

fn walk_expr<V: Visitor>(expr: &Expr, stmt_id: usize, v: &mut V) {
    v.visit_expr(stmt_id, expr);
    match expr {
        Expr::Lit(_) | Expr::Var(_) | Expr::Interp(_) => {}
        Expr::Index { base, index } => {
            walk_expr(base, stmt_id, v);
            walk_expr(index, stmt_id, v);
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, stmt_id, v);
            }
        }
        Expr::Unary { expr, .. } | Expr::Empty(expr) | Expr::AssignExpr { expr, .. } => {
            walk_expr(expr, stmt_id, v);
        }
        Expr::Binary { left, right, .. } => {
            walk_expr(left, stmt_id, v);
            walk_expr(right, stmt_id, v);
        }
        Expr::Ternary { cond, then_val, else_val } => {
            walk_expr(cond, stmt_id, v);
            if let Some(t) = then_val {
                walk_expr(t, stmt_id, v);
            }
            walk_expr(else_val, stmt_id, v);
        }
        Expr::ArrayLit(items) => {
            for (k, val) in items {
                if let Some(k) = k {
                    walk_expr(k, stmt_id, v);
                }
                walk_expr(val, stmt_id, v);
            }
        }
        Expr::Isset(exprs) => {
            for e in exprs {
                walk_expr(e, stmt_id, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program_spanned;

    struct Collect {
        stmts: Vec<(usize, String)>,
        calls: Vec<(usize, String)>,
    }

    impl Visitor for Collect {
        fn visit_stmt(&mut self, id: usize, stmt: &Stmt) {
            let kind = match stmt {
                Stmt::Expr(_) => "expr",
                Stmt::Assign { .. } => "assign",
                Stmt::If { .. } => "if",
                Stmt::While { .. } => "while",
                Stmt::Foreach { .. } => "foreach",
                Stmt::Echo(_) => "echo",
                Stmt::Return(_) => "return",
                Stmt::Exit(_) => "exit",
                Stmt::Break => "break",
                Stmt::Continue => "continue",
            };
            self.stmts.push((id, kind.to_string()));
        }

        fn visit_expr(&mut self, stmt_id: usize, expr: &Expr) {
            if let Expr::Call { name, .. } = expr {
                self.calls.push((stmt_id, name.clone()));
            }
        }
    }

    #[test]
    fn preorder_ids_match_span_table() {
        let src = r#"
            $id = $_GET['id'];
            if ($id) {
                $q = "SELECT * FROM t WHERE id=$id";
                mysql_query($q);
            } elseif ($x) {
                other();
            } else {
                echo 'none';
            }
            while ($i < 3) { $i += 1; }
        "#;
        let (prog, spans) = parse_program_spanned(src).unwrap();
        let mut v = Collect { stmts: Vec::new(), calls: Vec::new() };
        let count = walk_program(&prog, &mut v);
        assert_eq!(count, spans.len(), "one span per visited statement");
        // Ids are 0..count in visit order.
        let ids: Vec<usize> = v.stmts.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, (0..count).collect::<Vec<_>>());
        // The statement texts line up with their spans.
        let by_kind: Vec<(&str, &str)> =
            v.stmts.iter().map(|(id, k)| (k.as_str(), spans[*id].slice(src).trim())).collect();
        assert_eq!(by_kind[0].0, "assign");
        assert!(by_kind[0].1.starts_with("$id = $_GET"));
        assert_eq!(by_kind[1].0, "if");
        assert!(by_kind[1].1.starts_with("if ($id)"));
        // The elseif is a nested `if` statement with its own slot anchored
        // at the keyword.
        let nested = by_kind.iter().find(|(k, t)| *k == "if" && t.starts_with("elseif")).unwrap();
        assert!(nested.1.contains("other()"));
        // mysql_query is attributed to the expression statement inside the
        // then-branch.
        let (call_stmt, name) = &v.calls[0];
        assert_eq!(name, "mysql_query");
        assert!(spans[*call_stmt].slice(src).contains("mysql_query"));
    }

    #[test]
    fn spans_cover_whole_statements() {
        let src = "$a = 1; $b = $a . 'x'; mysql_query($b);";
        let (prog, spans) = parse_program_spanned(src).unwrap();
        assert_eq!(prog.len(), 3);
        assert_eq!(spans[0].slice(src), "$a = 1;");
        assert_eq!(spans[1].slice(src), "$b = $a . 'x';");
        assert_eq!(spans[2].slice(src), "mysql_query($b);");
    }
}
