//! String-fragment extraction — the PTI installer (§IV-A).
//!
//! "Joza recursively parses all source code files reachable from the top
//! directory and extracts string literals from each file to form the final
//! set of string fragments. … In the case of format strings or other
//! strings with placeholders, Joza breaks them down into multiple
//! fragments. … Note that only fragments that contain at least one valid
//! SQL token need to be retained."
//!
//! Extraction rules reproduced here:
//!
//! * every string literal in the source yields fragments;
//! * double-quoted strings are split at `$var` interpolations;
//! * `%s`/`%d`/`%f` format specifiers split fragments further (covers
//!   `sprintf`/`$wpdb->prepare`-style queries);
//! * fragments that lex to zero SQL tokens are dropped.

use crate::lexer::{lex_php, PTok, StrPart};
use joza_sqlparse::lexer::lex as sql_lex;
use std::collections::BTreeSet;

/// A de-duplicated, ordered set of program string fragments.
///
/// Ordering is lexicographic (via [`BTreeSet`]) so extraction is
/// deterministic regardless of source iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FragmentSet {
    fragments: BTreeSet<String>,
}

impl FragmentSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one fragment verbatim (used for framework-provided vocabulary).
    pub fn insert(&mut self, fragment: impl Into<String>) {
        let f = fragment.into();
        if !f.is_empty() {
            self.fragments.insert(f);
        }
    }

    /// Extends with fragments extracted from a PHP source file.
    ///
    /// Sources that fail to lex contribute nothing (real Joza skips
    /// unparseable files).
    pub fn add_source(&mut self, php_source: &str) {
        for frag in extract_fragments(php_source) {
            self.fragments.insert(frag);
        }
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Whether the exact fragment is present.
    pub fn contains(&self, fragment: &str) -> bool {
        self.fragments.contains(fragment)
    }

    /// Iterates fragments in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.fragments.iter().map(String::as_str)
    }
}

impl FromIterator<String> for FragmentSet {
    fn from_iter<T: IntoIterator<Item = String>>(iter: T) -> Self {
        let mut s = FragmentSet::new();
        for f in iter {
            s.insert(f);
        }
        s
    }
}

impl<'a> FromIterator<&'a str> for FragmentSet {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        iter.into_iter().map(str::to_string).collect()
    }
}

/// Extracts retained fragments from one PHP source file.
///
/// # Examples
///
/// ```
/// use joza_phpsim::fragments::extract_fragments;
///
/// let src = r#"
///     $q = "SELECT * FROM records WHERE ID=" . $_GET['id'] . " LIMIT 5";
/// "#;
/// let frags = extract_fragments(src);
/// assert!(frags.contains(&"SELECT * FROM records WHERE ID=".to_string()));
/// assert!(frags.contains(&" LIMIT 5".to_string()));
/// assert!(frags.contains(&"id".to_string()));
/// ```
pub fn extract_fragments(php_source: &str) -> Vec<String> {
    let Ok(tokens) = lex_php(php_source) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for tok in tokens {
        if let PTok::Str(parts) = tok {
            for part in parts {
                if let StrPart::Lit(lit) = part {
                    for piece in split_placeholders(&lit) {
                        if retain(&piece) {
                            out.push(piece);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Splits a literal at `%s`/`%d`/`%f`/`%05d`-style printf placeholders and
/// at `:name` prepared-statement placeholders ("in the case of format
/// strings or other strings with placeholders, Joza breaks them down into
/// multiple fragments", §IV-A). Placeholder positions are filled at run
/// time — by `sprintf` arguments or by parameter expansion — so the text
/// around them, not the placeholder itself, is what the program
/// contributes to queries.
fn split_placeholders(lit: &str) -> Vec<String> {
    let mut pieces = Vec::new();
    let mut cur = String::new();
    let mut chars = lit.chars().peekable();
    while let Some(c) = chars.next() {
        if c == ':' && chars.peek().is_some_and(|n| n.is_ascii_alphabetic() || *n == '_') {
            // `:name` prepared-statement placeholder: split and swallow
            // the identifier.
            if !cur.is_empty() {
                pieces.push(std::mem::take(&mut cur));
            }
            while chars.peek().is_some_and(|n| n.is_ascii_alphanumeric() || *n == '_') {
                chars.next();
            }
        } else if c == '%' {
            // %% is a literal percent.
            if chars.peek() == Some(&'%') {
                chars.next();
                cur.push('%');
                continue;
            }
            // Look ahead over digits to a conversion char.
            let mut lookahead = String::new();
            while chars.peek().is_some_and(|c| c.is_ascii_digit() || *c == '.') {
                lookahead.push(chars.next().unwrap());
            }
            match chars.peek() {
                Some('s') | Some('d') | Some('f') => {
                    chars.next();
                    if !cur.is_empty() {
                        pieces.push(std::mem::take(&mut cur));
                    }
                }
                _ => {
                    cur.push('%');
                    cur.push_str(&lookahead);
                }
            }
        } else {
            cur.push(c);
        }
    }
    if !cur.is_empty() {
        pieces.push(cur);
    }
    pieces
}

/// Retains fragments that contain at least one SQL token (§IV-A). A
/// fragment that lexes to nothing (whitespace-only) or only unknown bytes
/// is dropped.
fn retain(fragment: &str) -> bool {
    use joza_sqlparse::token::TokenKind;
    let toks = sql_lex(fragment);
    toks.iter().any(|t| t.kind != TokenKind::Unknown)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_fragments() {
        // The §III-B example program.
        let src = r#"
            $postid = $_GET['id'];
            $query = "SELECT * FROM records WHERE ID=" . $postid . " LIMIT 5";
            $result = mysql_query($query);
        "#;
        let frags: FragmentSet = extract_fragments(src).into_iter().collect();
        assert!(frags.contains("id"));
        assert!(frags.contains("SELECT * FROM records WHERE ID="));
        assert!(frags.contains(" LIMIT 5"));
    }

    #[test]
    fn interpolated_string_splits_at_variable() {
        let src = r#"$q = "SELECT * from users where id = $id and password=$password";"#;
        let frags = extract_fragments(src);
        assert!(frags.contains(&"SELECT * from users where id = ".to_string()));
        assert!(frags.contains(&" and password=".to_string()));
    }

    #[test]
    fn format_string_splits_at_specifiers() {
        let src = r#"$q = sprintf("SELECT * FROM t WHERE id=%d AND name='%s'", $id, $n);"#;
        let frags = extract_fragments(src);
        assert!(frags.contains(&"SELECT * FROM t WHERE id=".to_string()));
        assert!(frags.contains(&" AND name='".to_string()));
        assert!(frags.contains(&"'".to_string()));
    }

    #[test]
    fn percent_literal_not_split() {
        let src = r#"$q = "LIKE '%foo%'";"#;
        let frags = extract_fragments(src);
        // `%f` would be a specifier, but `%fo` — the lookahead sees 'f' and
        // splits; `%%` stays literal. Here '%foo%' contains %f → split.
        // Document actual behaviour: the pieces still carry SQL tokens.
        assert!(!frags.is_empty());
    }

    #[test]
    fn whitespace_only_fragment_dropped() {
        let frags = extract_fragments(r#"$pad = "   ";"#);
        assert!(frags.is_empty());
    }

    #[test]
    fn unlexable_source_contributes_nothing() {
        let frags = extract_fragments(r#"$x = 'unterminated"#);
        assert!(frags.is_empty());
    }

    #[test]
    fn fragment_set_dedups_and_orders() {
        let mut set = FragmentSet::new();
        set.add_source(r#"$a = "SELECT"; $b = "SELECT";"#);
        assert_eq!(set.len(), 1);
        set.insert("AND");
        set.insert("");
        assert_eq!(set.len(), 2);
        let v: Vec<&str> = set.iter().collect();
        assert_eq!(v, ["AND", "SELECT"]);
    }

    #[test]
    fn wordpress_style_vocabulary() {
        // Table III of the paper: WordPress contains fragments like UNION,
        // AND, OR, SELECT, CHAR, quotes, GROUP BY, ORDER BY, CAST, WHERE 1.
        let src = r#"
            $q1 = "SELECT ID FROM wp_posts WHERE 1";
            $q2 = "ORDER BY post_date";
            $q3 = "GROUP BY post_author";
            $sep = " AND ";
            $or = " OR ";
            $u = "UNION";
            $c = "CAST";
            $ch = "CHAR";
        "#;
        let set: FragmentSet = extract_fragments(src).into_iter().collect();
        for frag in ["UNION", "CAST", "CHAR", " AND ", " OR ", "ORDER BY post_date"] {
            assert!(set.contains(frag), "missing {frag:?}");
        }
    }
}
