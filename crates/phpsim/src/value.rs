//! PHP runtime values with PHP's type-juggling semantics.

use std::fmt;

/// A PHP array: insertion-ordered key/value pairs with PHP's implicit
/// integer key assignment for `$a[] = v`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PArray {
    entries: Vec<(PKey, PValue)>,
    next_index: i64,
}

/// A PHP array key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PKey {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(String),
}

impl PKey {
    /// Converts a value to a key the way PHP does: integral strings and
    /// floats become integer keys.
    pub fn from_value(v: &PValue) -> PKey {
        match v {
            PValue::Int(i) => PKey::Int(*i),
            PValue::Float(f) => PKey::Int(*f as i64),
            PValue::Bool(b) => PKey::Int(i64::from(*b)),
            PValue::Null => PKey::Str(String::new()),
            PValue::Str(s) => match s.parse::<i64>() {
                Ok(i) if i.to_string() == *s => PKey::Int(i),
                _ => PKey::Str(s.clone()),
            },
            other => PKey::Str(other.to_php_string()),
        }
    }
}

impl PArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        PArray::default()
    }

    /// Inserts or replaces the value at `key`.
    pub fn set(&mut self, key: PKey, value: PValue) {
        if let PKey::Int(i) = key {
            if i >= self.next_index {
                self.next_index = i + 1;
            }
        }
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Appends with the next integer key (`$a[] = v`).
    pub fn push(&mut self, value: PValue) {
        let key = PKey::Int(self.next_index);
        self.next_index += 1;
        self.entries.push((key, value));
    }

    /// Looks up a key.
    pub fn get(&self, key: &PKey) -> Option<&PValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the array has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(PKey, PValue)> {
        self.entries.iter()
    }
}

impl FromIterator<(PKey, PValue)> for PArray {
    fn from_iter<T: IntoIterator<Item = (PKey, PValue)>>(iter: T) -> Self {
        let mut a = PArray::new();
        for (k, v) in iter {
            a.set(k, v);
        }
        a
    }
}

/// A PHP value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PValue {
    /// `null`.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(PArray),
    /// An opaque resource handle (MySQL result sets).
    Resource(usize),
}

impl PValue {
    /// PHP string conversion (`(string)$v`).
    pub fn to_php_string(&self) -> String {
        match self {
            PValue::Null => String::new(),
            PValue::Bool(true) => "1".into(),
            PValue::Bool(false) => String::new(),
            PValue::Int(i) => i.to_string(),
            PValue::Float(f) => {
                if *f == f.trunc() && f.abs() < 1e15 {
                    format!("{}", *f as i64)
                } else {
                    format!("{f}")
                }
            }
            PValue::Str(s) => s.clone(),
            PValue::Array(_) => "Array".into(),
            PValue::Resource(id) => format!("Resource id #{id}"),
        }
    }

    /// Appends the PHP string conversion to `buf` without allocating an
    /// intermediate `String` — byte-identical to appending
    /// [`PValue::to_php_string`]. The VM's fused echo/concat ops use this
    /// on their hot path.
    pub fn append_php_string(&self, buf: &mut String) {
        use std::fmt::Write as _;
        match self {
            PValue::Null | PValue::Bool(false) => {}
            PValue::Bool(true) => buf.push('1'),
            PValue::Int(i) => {
                let _ = write!(buf, "{i}");
            }
            PValue::Float(f) => {
                if *f == f.trunc() && f.abs() < 1e15 {
                    let _ = write!(buf, "{}", *f as i64);
                } else {
                    let _ = write!(buf, "{f}");
                }
            }
            PValue::Str(s) => buf.push_str(s),
            PValue::Array(_) => buf.push_str("Array"),
            PValue::Resource(id) => {
                let _ = write!(buf, "Resource id #{id}");
            }
        }
    }

    /// PHP boolean conversion.
    pub fn to_php_bool(&self) -> bool {
        match self {
            PValue::Null => false,
            PValue::Bool(b) => *b,
            PValue::Int(i) => *i != 0,
            PValue::Float(f) => *f != 0.0,
            PValue::Str(s) => !s.is_empty() && s != "0",
            PValue::Array(a) => !a.is_empty(),
            PValue::Resource(_) => true,
        }
    }

    /// PHP float conversion (numeric prefix for strings).
    pub fn to_php_float(&self) -> f64 {
        match self {
            PValue::Null => 0.0,
            PValue::Bool(b) => f64::from(*b),
            PValue::Int(i) => *i as f64,
            PValue::Float(f) => *f,
            PValue::Str(s) => numeric_prefix(s),
            PValue::Array(a) => f64::from(!a.is_empty()),
            PValue::Resource(id) => *id as f64,
        }
    }

    /// PHP integer conversion (`intval`).
    pub fn to_php_int(&self) -> i64 {
        self.to_php_float() as i64
    }

    /// PHP loose equality (`==`). Implements the numeric-comparison rules
    /// injections exploit (`'1abc' == 1` is true in the PHP 5 era).
    pub fn loose_eq(&self, other: &PValue) -> bool {
        use PValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(_), _) | (_, Bool(_)) => self.to_php_bool() == other.to_php_bool(),
            (Null, _) | (_, Null) => !self.to_php_bool() && !other.to_php_bool(),
            (Str(a), Str(b)) => {
                if is_numeric(a) && is_numeric(b) {
                    numeric_prefix(a) == numeric_prefix(b)
                } else {
                    a == b
                }
            }
            (Array(a), Array(b)) => a == b,
            (Array(_), _) | (_, Array(_)) => false,
            _ => self.to_php_float() == other.to_php_float(),
        }
    }

    /// PHP strict equality (`===`).
    pub fn strict_eq(&self, other: &PValue) -> bool {
        use PValue::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            (Resource(a), Resource(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for PValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_php_string())
    }
}

impl From<&str> for PValue {
    fn from(s: &str) -> Self {
        PValue::Str(s.to_string())
    }
}

impl From<String> for PValue {
    fn from(s: String) -> Self {
        PValue::Str(s)
    }
}

impl From<i64> for PValue {
    fn from(i: i64) -> Self {
        PValue::Int(i)
    }
}

impl From<bool> for PValue {
    fn from(b: bool) -> Self {
        PValue::Bool(b)
    }
}

/// PHP `is_numeric`.
pub fn is_numeric(s: &str) -> bool {
    let t = s.trim();
    !t.is_empty() && t.parse::<f64>().is_ok()
}

fn numeric_prefix(s: &str) -> f64 {
    let t = s.trim_start();
    let bytes = t.as_bytes();
    let mut end = 0;
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while end < bytes.len() {
        let b = bytes[end];
        if b.is_ascii_digit() {
            seen_digit = true;
        } else if (b == b'-' || b == b'+') && end == 0 {
        } else if b == b'.' && !seen_dot && !seen_exp {
            seen_dot = true;
        } else if (b == b'e' || b == b'E')
            && seen_digit
            && !seen_exp
            && bytes.get(end + 1).is_some_and(|c| c.is_ascii_digit() || *c == b'-' || *c == b'+')
        {
            seen_exp = true;
        } else {
            break;
        }
        end += 1;
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_conversions() {
        assert_eq!(PValue::Null.to_php_string(), "");
        assert_eq!(PValue::Bool(true).to_php_string(), "1");
        assert_eq!(PValue::Bool(false).to_php_string(), "");
        assert_eq!(PValue::Int(-3).to_php_string(), "-3");
        assert_eq!(PValue::Float(2.0).to_php_string(), "2");
        assert_eq!(PValue::Float(2.5).to_php_string(), "2.5");
    }

    #[test]
    fn bool_conversions() {
        assert!(!PValue::Str("0".into()).to_php_bool());
        assert!(!PValue::Str("".into()).to_php_bool());
        assert!(PValue::Str("0.0".into()).to_php_bool()); // PHP quirk: "0.0" is true
        assert!(PValue::Str("false".into()).to_php_bool());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(PValue::Str("42abc".into()).to_php_int(), 42);
        assert_eq!(PValue::Str("-1 UNION".into()).to_php_int(), -1);
        assert_eq!(PValue::Str("abc".into()).to_php_int(), 0);
        assert_eq!(PValue::Str("3.5".into()).to_php_float(), 3.5);
        assert_eq!(PValue::Str("1e2".into()).to_php_float(), 100.0);
    }

    #[test]
    fn loose_vs_strict_equality() {
        let one = PValue::Int(1);
        let one_s = PValue::Str("1".into());
        assert!(one.loose_eq(&one_s));
        assert!(!one.strict_eq(&one_s));
        assert!(PValue::Str("1.0".into()).loose_eq(&PValue::Str("1".into())));
        assert!(!PValue::Str("abc".into()).loose_eq(&PValue::Str("abd".into())));
        assert!(PValue::Null.loose_eq(&PValue::Str("".into())));
    }

    #[test]
    fn array_int_key_autoindex() {
        let mut a = PArray::new();
        a.push(PValue::Int(10));
        a.set(PKey::Int(5), PValue::Int(20));
        a.push(PValue::Int(30)); // gets key 6
        assert_eq!(a.get(&PKey::Int(0)), Some(&PValue::Int(10)));
        assert_eq!(a.get(&PKey::Int(6)), Some(&PValue::Int(30)));
    }

    #[test]
    fn array_string_int_key_unification() {
        let mut a = PArray::new();
        a.set(PKey::from_value(&PValue::Str("3".into())), PValue::Int(1));
        assert_eq!(a.get(&PKey::Int(3)), Some(&PValue::Int(1)));
        a.set(PKey::from_value(&PValue::Str("03".into())), PValue::Int(2));
        assert_eq!(a.get(&PKey::Str("03".into())), Some(&PValue::Int(2)));
    }

    #[test]
    fn set_replaces_existing() {
        let mut a = PArray::new();
        a.set(PKey::Str("k".into()), PValue::Int(1));
        a.set(PKey::Str("k".into()), PValue::Int(2));
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(&PKey::Str("k".into())), Some(&PValue::Int(2)));
    }
}
