//! Simulated exogenous costs.
//!
//! The paper evaluates Joza on real WordPress running under a real PHP
//! interpreter, where a plain page render costs ~218 ms and the PHP side
//! of the PTI daemon protocol (serialization, pipe I/O) costs real time
//! per query. This reproduction's substrate is a PHP-subset interpreter
//! and an in-memory database, which are orders of magnitude faster, so
//! the *ratio* of application cost to Joza's analysis cost — the quantity
//! every percentage in §VI is built from — would be wildly unrepresentative
//! without a cost model.
//!
//! [`simulate`] burns a calibrated amount of wall-clock time to stand in
//! for work the paper's substrate performs and ours does not (theme/
//! template rendering, PHP-side pipe serialization, daemon process spawn).
//! All Joza analysis time remains genuinely measured; only the baseline
//! application cost and the PHP-boundary costs are modeled. Every use is
//! documented in `DESIGN.md` (substitution table) and all knobs default to
//! zero, so unit tests and library users never pay them.

use std::time::{Duration, Instant};

/// Burns approximately `cost` of wall-clock time doing no useful work.
///
/// This is a spin wait, not a sleep: it models *CPU-bound* work (PHP
/// opcode dispatch, template rendering, `serialize()`/`unserialize()`),
/// stays accurate at microsecond granularity, and is unaffected by timer
/// slack. A zero duration returns immediately.
///
/// # Examples
///
/// ```
/// use std::time::{Duration, Instant};
/// let t0 = Instant::now();
/// joza_phpsim::cost::simulate(Duration::from_micros(200));
/// assert!(t0.elapsed() >= Duration::from_micros(200));
/// ```
pub fn simulate(cost: Duration) {
    if cost.is_zero() {
        return;
    }
    let t0 = Instant::now();
    while t0.elapsed() < cost {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_free() {
        let t0 = Instant::now();
        simulate(Duration::ZERO);
        assert!(t0.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn burns_at_least_the_requested_time() {
        let d = Duration::from_micros(500);
        let t0 = Instant::now();
        simulate(d);
        assert!(t0.elapsed() >= d);
    }

    #[test]
    fn does_not_grossly_overshoot() {
        let d = Duration::from_millis(2);
        let t0 = Instant::now();
        simulate(d);
        // Spin waits poll the clock continuously; allow generous slack for
        // a preemption but catch order-of-magnitude bugs.
        assert!(t0.elapsed() < d * 20, "took {:?}", t0.elapsed());
    }
}
