//! Bytecode compiler: lowers the phpsim AST to a flat [`Chunk`].
//!
//! The tree-walking [`crate::interp::Interp`] re-dispatches on AST nodes
//! and hashes variable-name strings on every access; for the serving
//! workloads in this reproduction that interpreter cost dominates
//! end-to-end request time, so benches measure the interpreter rather
//! than the gate. This module compiles each program once into a compact
//! stack-machine [`Chunk`] — constant pool, variable slots,
//! jump-patched control flow, pre-lowered builtin call names, dedicated
//! host-call ops for `mysql_query`/`db_query` — that
//! [`crate::vm::Vm`] executes against the same [`crate::interp::Host`].
//! The tree-walker stays intact as the differential oracle: both engines
//! share the builtin table, the type-juggling helpers, and the
//! superglobal population code, and the differential suites assert
//! bit-identical output, query order, and error behaviour.
//!
//! Compilation is total: every parsable program compiles (errors such as
//! undefined functions stay runtime errors, raised only if the call is
//! actually executed — exactly like the tree-walker).

use crate::ast::*;
use crate::value::PValue;
use std::collections::HashMap;

/// The five superglobals pinned, in this order, to the first variable
/// slots of every [`Chunk`]. [`crate::vm::Vm`] relies on this layout to
/// install request parameters before execution.
pub const SUPERGLOBALS: [&str; 5] = ["_GET", "_POST", "_COOKIE", "_REQUEST", "_SERVER"];

/// A builtin call name, lowered once at compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallName {
    /// Lowercased dispatch key (PHP function names are case-insensitive).
    pub lower: String,
    /// Original spelling, preserved for the undefined-function error
    /// message the tree-walker produces.
    pub original: String,
}

/// One piece of a compiled interpolated string template.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpSeg {
    /// A literal run.
    Lit(String),
    /// A variable slot, converted with `to_php_string` at runtime.
    Var(u32),
}

/// A bytecode instruction for the phpsim stack machine.
///
/// Indices refer to the owning [`Chunk`]'s pools. Jump targets are
/// absolute instruction offsets (patched after the target is known).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `consts[i]`.
    Const(u32),
    /// Push a copy of variable slot `i` (`Null` when never assigned —
    /// observationally identical to the tree-walker's absent map entry).
    Load(u32),
    /// Pop into variable slot `i`.
    Store(u32),
    /// Pop the right-hand side and fold it into slot `i` with a compound
    /// assignment operator (`.=`, `+=`, `-=`).
    StoreOp(u32, AssignOp),
    /// Indexed store `$a[k…] (op)= rhs`. The stack holds the rhs first,
    /// then one value per `true` entry of `index_paths[path]` (a `false`
    /// entry is an `$a[]` append with no key on the stack).
    StoreIndex {
        /// Root variable slot.
        slot: u32,
        /// Index into [`Chunk::index_paths`].
        path: u32,
        /// Compound operator (`None` for plain `=`).
        op: Option<AssignOp>,
    },
    /// Duplicate the top of the stack.
    Dup,
    /// Discard the top of the stack.
    Pop,
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy (`to_php_bool`).
    JumpIfFalse(u32),
    /// Pop; jump when truthy.
    JumpIfTrue(u32),
    /// Pop; push `Bool(to_php_bool)` — the second half of `&&`/`||`.
    ToBool,
    /// Pop; push logical negation (also compiles `empty()`).
    Not,
    /// Pop; push arithmetic negation with PHP's `Int`/`Float` rule.
    Neg,
    /// Pop right then left; push `eval_binop` (non-short-circuit ops).
    Bin(BinOp),
    /// Pop `n` values; push their `to_php_string` concatenation. Fuses
    /// `.` chains so query construction allocates once.
    Concat(u32),
    /// Pop index then base; push the element read.
    Index,
    /// Pop the index; push the element read from slot `i` *by reference*
    /// — the fused `$var[k]` form that skips [`Op::Load`]'s whole-value
    /// clone (the dominant cost of fetch loops reading `$row['col']`).
    LoadIndex(u32),
    /// Pop `n` values; append each to the output buffer in order — the
    /// fused `echo a . b . c;` form. Operands are fully evaluated before
    /// the first append, exactly like [`Op::Concat`] + [`Op::Echo`], so
    /// side-effect interleaving with the output buffer is unchanged;
    /// only the intermediate concatenated `String` is gone.
    EchoN(u32),
    /// Pop a value; store it into slot `i` and push its truthiness — the
    /// fused condition-position `while ($x = expr)` form, replacing
    /// `Dup`+`Store` so the assigned value (often a whole result row) is
    /// not cloned just to be boolean-tested.
    StoreTruthy(u32),
    /// Pop the rhs; `slot .= rhs` appending in place when the slot holds
    /// a string (the `$html .= …` accumulation pattern), falling back to
    /// the shared `apply_assign_op` for every other type.
    AppendSlot(u32),
    /// Push the rendered template `interps[i]` (reads slots directly).
    Interp(u32),
    /// Pop `argc` arguments; dispatch builtin `names[name]`; push result.
    Call {
        /// Index into [`Chunk::names`].
        name: u32,
        /// Argument count.
        argc: u32,
    },
    /// Pop the SQL text; run it through [`crate::interp::Host::query`]
    /// with the exact `mysql_query` outcome conversion; push the result.
    HostQuery,
    /// Pop the argument array then the SQL text; expand Drupal-style
    /// placeholders and run [`crate::interp::Host::query_prepared`];
    /// push the result.
    HostQueryPrepared,
    /// Pop; append `to_php_string` to the output buffer.
    Echo,
    /// Pop; append to the output buffer only when the value is a string
    /// (the `die('msg')` rule).
    ExitMsg,
    /// Stop execution (compiles `return`, `exit`, and end-of-program).
    Halt,
    /// Push a fresh empty array.
    NewArray,
    /// Pop a value; append it to the array at the top of the stack.
    ArrayPush,
    /// Pop a key then a value; insert into the array at the top of the
    /// stack.
    ArrayInsert,
    /// Push whether slot `i` holds a non-`Null` value.
    IssetSlot(u32),
    /// Pop index then base; push `isset($base[$index])`.
    IssetIndex,
    /// Zero loop-guard counter `g` (entering a `while`).
    GuardReset(u32),
    /// Bump loop-guard counter `g`; error past the iteration limit,
    /// mirroring the tree-walker's runaway-loop protection.
    GuardTick(u32),
    /// Pop a value; push a snapshot iterator over it (empty for
    /// non-arrays — `foreach` over a scalar silently skips its body).
    IterNew,
    /// Advance the innermost iterator: on exhaustion pop it and jump to
    /// `end`; otherwise store the key (when requested) and value slots
    /// and fall through into the body.
    IterNext {
        /// Key variable slot for the `$k => $v` form.
        key: Option<u32>,
        /// Value variable slot.
        val: u32,
        /// Jump target once the iterator is exhausted.
        end: u32,
    },
    /// Discard the innermost iterator (`break` out of a `foreach`).
    IterPop,
}

/// A compiled program: flat bytecode plus its pools.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chunk {
    /// The instruction stream.
    pub ops: Vec<Op>,
    /// Constant pool.
    pub consts: Vec<PValue>,
    /// Builtin call names (lowered once at compile time).
    pub names: Vec<CallName>,
    /// Variable slot names; slots `0..5` are always [`SUPERGLOBALS`].
    pub vars: Vec<String>,
    /// Interpolated-string templates.
    pub interps: Vec<Vec<InterpSeg>>,
    /// Key-path descriptors for [`Op::StoreIndex`]: `true` entries have
    /// a key value on the stack, `false` entries are appends.
    pub index_paths: Vec<Vec<bool>>,
    /// Number of loop-guard counters the VM must allocate.
    pub guards: u32,
}

/// Compiles a parsed program to bytecode. Total: never fails.
pub fn compile(program: &[Stmt]) -> Chunk {
    let mut c = Compiler::new();
    for stmt in program {
        c.stmt(stmt);
    }
    let end = c.ops.len() as u32;
    for at in std::mem::take(&mut c.top_exits) {
        c.patch(at, end);
    }
    Chunk {
        ops: c.ops,
        consts: c.consts,
        names: c.names,
        vars: c.vars,
        interps: c.interps,
        index_paths: c.index_paths,
        guards: c.guards,
    }
}

/// Per-loop compile context for `break`/`continue` resolution.
struct LoopCtx {
    /// Where `continue` jumps: the condition re-check (`while`) or the
    /// iterator advance (`foreach`).
    continue_pc: u32,
    /// `Jump` placeholders to patch to the loop end.
    breaks: Vec<usize>,
    /// Whether `break` must also discard an active iterator.
    is_foreach: bool,
}

struct Compiler {
    ops: Vec<Op>,
    consts: Vec<PValue>,
    names: Vec<CallName>,
    vars: Vec<String>,
    var_slots: HashMap<String, u32>,
    interps: Vec<Vec<InterpSeg>>,
    index_paths: Vec<Vec<bool>>,
    guards: u32,
    loops: Vec<LoopCtx>,
    /// `break`/`continue` outside any loop: ends the program, exactly as
    /// the tree-walker's flow signal unwinds to `run`.
    top_exits: Vec<usize>,
}

impl Compiler {
    fn new() -> Self {
        let mut c = Compiler {
            ops: Vec::new(),
            consts: Vec::new(),
            names: Vec::new(),
            vars: Vec::new(),
            var_slots: HashMap::new(),
            interps: Vec::new(),
            index_paths: Vec::new(),
            guards: 0,
            loops: Vec::new(),
            top_exits: Vec::new(),
        };
        for sg in SUPERGLOBALS {
            c.slot(sg);
        }
        c
    }

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => *t = target,
            Op::IterNext { end, .. } => *end = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn slot(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.var_slots.get(name) {
            return s;
        }
        let s = self.vars.len() as u32;
        self.vars.push(name.to_string());
        self.var_slots.insert(name.to_string(), s);
        s
    }

    fn konst(&mut self, v: PValue) -> u32 {
        // Linear-scan interning: constant pools are small and compilation
        // happens once per route.
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn name(&mut self, original: &str) -> u32 {
        let lower = original.to_ascii_lowercase();
        if let Some(i) = self.names.iter().position(|n| n.lower == lower && n.original == original)
        {
            return i as u32;
        }
        self.names.push(CallName { lower, original: original.to_string() });
        (self.names.len() - 1) as u32
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Expr(e) => {
                self.expr(e);
                self.emit(Op::Pop);
            }
            Stmt::Assign { var, indices, op, expr } => {
                // Evaluation order matches the tree-walker: rhs first,
                // then index expressions left to right.
                self.expr(expr);
                if indices.is_empty() {
                    let s = self.slot(var);
                    match op {
                        None => self.emit(Op::Store(s)),
                        // `$x .= rhs` appends in place at runtime instead
                        // of rebuilding the accumulated string.
                        Some(AssignOp::Concat) => self.emit(Op::AppendSlot(s)),
                        Some(aop) => self.emit(Op::StoreOp(s, *aop)),
                    };
                } else {
                    let mut path = Vec::with_capacity(indices.len());
                    for idx in indices {
                        match idx {
                            Some(e) => {
                                self.expr(e);
                                path.push(true);
                            }
                            None => path.push(false),
                        }
                    }
                    let s = self.slot(var);
                    let p = self.index_paths.len() as u32;
                    self.index_paths.push(path);
                    self.emit(Op::StoreIndex { slot: s, path: p, op: *op });
                }
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.cond(cond);
                let to_else = self.emit(Op::JumpIfFalse(0));
                for s in then_branch {
                    self.stmt(s);
                }
                if else_branch.is_empty() {
                    let end = self.here();
                    self.patch(to_else, end);
                } else {
                    let to_end = self.emit(Op::Jump(0));
                    let else_pc = self.here();
                    self.patch(to_else, else_pc);
                    for s in else_branch {
                        self.stmt(s);
                    }
                    let end = self.here();
                    self.patch(to_end, end);
                }
            }
            Stmt::While { cond, body } => {
                let g = self.guards;
                self.guards += 1;
                self.emit(Op::GuardReset(g));
                let cond_pc = self.here();
                self.cond(cond);
                let to_end = self.emit(Op::JumpIfFalse(0));
                self.emit(Op::GuardTick(g));
                self.loops.push(LoopCtx {
                    continue_pc: cond_pc,
                    breaks: Vec::new(),
                    is_foreach: false,
                });
                for s in body {
                    self.stmt(s);
                }
                self.emit(Op::Jump(cond_pc));
                let end = self.here();
                self.patch(to_end, end);
                let ctx = self.loops.pop().expect("loop context");
                for b in ctx.breaks {
                    self.patch(b, end);
                }
            }
            Stmt::Foreach { array, key_var, val_var, body } => {
                // The iterated expression is evaluated once; the snapshot
                // makes in-loop mutation invisible to the iteration,
                // exactly like the tree-walker's owned copy.
                self.expr(array);
                self.emit(Op::IterNew);
                let next_pc = self.here();
                let key = key_var.as_deref().map(|k| self.slot(k));
                let val = self.slot(val_var);
                let iter_at = self.emit(Op::IterNext { key, val, end: 0 });
                self.loops.push(LoopCtx {
                    continue_pc: next_pc,
                    breaks: Vec::new(),
                    is_foreach: true,
                });
                for s in body {
                    self.stmt(s);
                }
                self.emit(Op::Jump(next_pc));
                let end = self.here();
                self.patch(iter_at, end);
                let ctx = self.loops.pop().expect("loop context");
                for b in ctx.breaks {
                    self.patch(b, end);
                }
            }
            Stmt::Echo(exprs) => {
                // Per-expression append, interleaving output with any
                // side effects of later expressions. A concat-chain
                // argument appends its parts directly (no intermediate
                // concatenated string) — the parts are still all
                // evaluated before the first byte is appended, like
                // `Concat` + `Echo` would.
                for e in exprs {
                    if let Expr::Binary { op: BinOp::Concat, .. } = e {
                        let mut parts = Vec::new();
                        flatten_concat(e, &mut parts);
                        for p in &parts {
                            self.expr(p);
                        }
                        self.emit(Op::EchoN(parts.len() as u32));
                    } else {
                        self.expr(e);
                        self.emit(Op::Echo);
                    }
                }
            }
            Stmt::Return(value) => {
                if let Some(v) = value {
                    self.expr(v);
                    self.emit(Op::Pop);
                }
                self.emit(Op::Halt);
            }
            Stmt::Exit(value) => {
                if let Some(v) = value {
                    self.expr(v);
                    self.emit(Op::ExitMsg);
                }
                self.emit(Op::Halt);
            }
            Stmt::Break => match self.loops.last_mut() {
                Some(ctx) => {
                    let is_foreach = ctx.is_foreach;
                    if is_foreach {
                        self.emit(Op::IterPop);
                    }
                    let at = self.emit(Op::Jump(0));
                    self.loops.last_mut().expect("loop context").breaks.push(at);
                }
                None => {
                    let at = self.emit(Op::Jump(0));
                    self.top_exits.push(at);
                }
            },
            Stmt::Continue => match self.loops.last() {
                Some(ctx) => {
                    let target = ctx.continue_pc;
                    self.emit(Op::Jump(target));
                }
                None => {
                    let at = self.emit(Op::Jump(0));
                    self.top_exits.push(at);
                }
            },
        }
    }

    /// Compiles an expression in *condition position* (the next op is a
    /// conditional jump that pops and boolean-tests it). The
    /// `while ($row = fetch())` pattern lowers to [`Op::StoreTruthy`]
    /// here, storing the value without the `Dup` clone — the pushed
    /// truthiness is boolean-identical to the assigned value.
    fn cond(&mut self, expr: &Expr) {
        if let Expr::AssignExpr { var, expr: rhs } = expr {
            self.expr(rhs);
            let s = self.slot(var);
            self.emit(Op::StoreTruthy(s));
        } else {
            self.expr(expr);
        }
    }

    fn expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Lit(v) => {
                let i = self.konst(v.clone());
                self.emit(Op::Const(i));
            }
            Expr::Var(name) => {
                let s = self.slot(name);
                self.emit(Op::Load(s));
            }
            Expr::Interp(parts) => {
                let segs: Vec<InterpSeg> = parts
                    .iter()
                    .map(|p| match p {
                        InterpPart::Lit(l) => InterpSeg::Lit(l.clone()),
                        InterpPart::Var(v) => InterpSeg::Var(self.slot(v)),
                    })
                    .collect();
                let i = self.interps.len() as u32;
                self.interps.push(segs);
                self.emit(Op::Interp(i));
            }
            Expr::Index { base, index } => {
                // `$var[k]` reads the slot by reference and clones only
                // the indexed element — valid unless the index expression
                // could reassign the base variable in between (the
                // tree-walker snapshots the base *before* evaluating the
                // index). Reading a variable has no side effects, so with
                // assignment-free indices the reorder is unobservable.
                if let Expr::Var(name) = &**base {
                    if !contains_assign(index) {
                        self.expr(index);
                        let s = self.slot(name);
                        self.emit(Op::LoadIndex(s));
                        return;
                    }
                }
                self.expr(base);
                self.expr(index);
                self.emit(Op::Index);
            }
            Expr::Call { name, args } => {
                // Host-call ops for the two query entry points whose
                // common shapes the compiler can prove; everything else
                // (including the mysqli arg-shuffle forms) dispatches
                // through the shared builtin table.
                for a in args {
                    self.expr(a);
                }
                if name.eq_ignore_ascii_case("mysql_query") && args.len() == 1 {
                    self.emit(Op::HostQuery);
                } else if name.eq_ignore_ascii_case("db_query") && args.len() == 2 {
                    self.emit(Op::HostQueryPrepared);
                } else {
                    let n = self.name(name);
                    self.emit(Op::Call { name: n, argc: args.len() as u32 });
                }
            }
            Expr::Unary { op, expr } => {
                self.expr(expr);
                match op {
                    UnaryOp::Not => {
                        self.emit(Op::Not);
                    }
                    UnaryOp::Neg => {
                        self.emit(Op::Neg);
                    }
                    UnaryOp::Silence => {}
                }
            }
            Expr::Binary { left, op, right } => match op {
                BinOp::And => {
                    self.expr(left);
                    let to_false = self.emit(Op::JumpIfFalse(0));
                    self.expr(right);
                    self.emit(Op::ToBool);
                    let to_end = self.emit(Op::Jump(0));
                    let false_pc = self.here();
                    self.patch(to_false, false_pc);
                    let f = self.konst(PValue::Bool(false));
                    self.emit(Op::Const(f));
                    let end = self.here();
                    self.patch(to_end, end);
                }
                BinOp::Or => {
                    self.expr(left);
                    let to_true = self.emit(Op::JumpIfTrue(0));
                    self.expr(right);
                    self.emit(Op::ToBool);
                    let to_end = self.emit(Op::Jump(0));
                    let true_pc = self.here();
                    self.patch(to_true, true_pc);
                    let t = self.konst(PValue::Bool(true));
                    self.emit(Op::Const(t));
                    let end = self.here();
                    self.patch(to_end, end);
                }
                BinOp::Concat => {
                    // Fuse the whole `.` chain into one n-ary concat;
                    // operand evaluation order is unchanged and string
                    // concatenation is associative, so the built text is
                    // byte-identical.
                    let mut parts = Vec::new();
                    flatten_concat(expr, &mut parts);
                    for p in &parts {
                        self.expr(p);
                    }
                    self.emit(Op::Concat(parts.len() as u32));
                }
                _ => {
                    self.expr(left);
                    self.expr(right);
                    self.emit(Op::Bin(*op));
                }
            },
            Expr::Ternary { cond, then_val, else_val } => match then_val {
                Some(t) => {
                    self.expr(cond);
                    let to_else = self.emit(Op::JumpIfFalse(0));
                    self.expr(t);
                    let to_end = self.emit(Op::Jump(0));
                    let else_pc = self.here();
                    self.patch(to_else, else_pc);
                    self.expr(else_val);
                    let end = self.here();
                    self.patch(to_end, end);
                }
                None => {
                    // `?:` returns the condition value itself when
                    // truthy (not a bool cast).
                    self.expr(cond);
                    self.emit(Op::Dup);
                    let to_end = self.emit(Op::JumpIfTrue(0));
                    self.emit(Op::Pop);
                    self.expr(else_val);
                    let end = self.here();
                    self.patch(to_end, end);
                }
            },
            Expr::ArrayLit(items) => {
                self.emit(Op::NewArray);
                for (key, value) in items {
                    // Value before key — the tree-walker's order.
                    self.expr(value);
                    match key {
                        Some(k) => {
                            self.expr(k);
                            self.emit(Op::ArrayInsert);
                        }
                        None => {
                            self.emit(Op::ArrayPush);
                        }
                    }
                }
            }
            Expr::Isset(exprs) => {
                // Short-circuit chain. Each clause pushes a bool; `Var`
                // and `Index` clauses evaluate (side effects included),
                // anything else is vacuously set *without* evaluation —
                // all exactly as the tree-walker does.
                let mut pending = Vec::new();
                for (i, e) in exprs.iter().enumerate() {
                    self.isset_one(e);
                    if i + 1 < exprs.len() {
                        pending.push(self.emit(Op::JumpIfFalse(0)));
                    }
                }
                if !pending.is_empty() {
                    let to_end = self.emit(Op::Jump(0));
                    let false_pc = self.here();
                    for at in pending {
                        self.patch(at, false_pc);
                    }
                    let f = self.konst(PValue::Bool(false));
                    self.emit(Op::Const(f));
                    let end = self.here();
                    self.patch(to_end, end);
                }
            }
            Expr::Empty(e) => {
                self.expr(e);
                self.emit(Op::Not);
            }
            Expr::AssignExpr { var, expr } => {
                self.expr(expr);
                self.emit(Op::Dup);
                let s = self.slot(var);
                self.emit(Op::Store(s));
            }
        }
    }

    fn isset_one(&mut self, e: &Expr) {
        match e {
            Expr::Var(name) => {
                let s = self.slot(name);
                self.emit(Op::IssetSlot(s));
            }
            Expr::Index { base, index } => {
                self.expr(base);
                self.expr(index);
                self.emit(Op::IssetIndex);
            }
            _ => {
                let t = self.konst(PValue::Bool(true));
                self.emit(Op::Const(t));
            }
        }
    }
}

/// Whether an expression can assign to a variable anywhere inside it —
/// the only side effect that invalidates the fused [`Op::LoadIndex`]
/// base-read reorder (builtins and host calls never touch script
/// variables).
fn contains_assign(e: &Expr) -> bool {
    match e {
        Expr::AssignExpr { .. } => true,
        Expr::Lit(_) | Expr::Var(_) | Expr::Interp(_) => false,
        Expr::Index { base, index } => contains_assign(base) || contains_assign(index),
        Expr::Call { args, .. } => args.iter().any(contains_assign),
        Expr::Unary { expr, .. } => contains_assign(expr),
        Expr::Binary { left, right, .. } => contains_assign(left) || contains_assign(right),
        Expr::Ternary { cond, then_val, else_val } => {
            contains_assign(cond)
                || then_val.as_deref().is_some_and(contains_assign)
                || contains_assign(else_val)
        }
        Expr::ArrayLit(items) => {
            items.iter().any(|(k, v)| k.as_ref().is_some_and(contains_assign) || contains_assign(v))
        }
        Expr::Isset(exprs) => exprs.iter().any(contains_assign),
        Expr::Empty(inner) => contains_assign(inner),
    }
}

/// Flattens a `.` chain into its operands, preserving evaluation order.
fn flatten_concat<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Binary { left, op: BinOp::Concat, right } => {
            flatten_concat(left, out);
            flatten_concat(right, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile_src(src: &str) -> Chunk {
        compile(&parse_program(src).expect("valid program"))
    }

    #[test]
    fn superglobals_get_fixed_slots() {
        let chunk = compile_src("$x = 1;");
        assert_eq!(&chunk.vars[..5], SUPERGLOBALS);
        assert_eq!(chunk.vars[5], "x");
    }

    #[test]
    fn constants_are_interned() {
        let chunk = compile_src(r#"$a = 'dup'; $b = 'dup'; $c = 'other';"#);
        let strs = chunk.consts.iter().filter(|c| matches!(c, PValue::Str(_))).count();
        assert_eq!(strs, 2, "{:?}", chunk.consts);
    }

    #[test]
    fn concat_chains_fuse() {
        let chunk = compile_src(r#"$q = "a" . $x . "b" . $y;"#);
        assert!(
            chunk.ops.contains(&Op::Concat(4)),
            "expected one fused 4-ary concat: {:?}",
            chunk.ops
        );
    }

    #[test]
    fn mysql_query_compiles_to_host_op() {
        let chunk = compile_src(r#"mysql_query("SELECT 1");"#);
        assert!(chunk.ops.contains(&Op::HostQuery), "{:?}", chunk.ops);
        assert!(chunk.names.is_empty());
    }

    #[test]
    fn jumps_stay_in_bounds() {
        let chunk = compile_src(
            r#"$i = 0;
               while ($i < 3) {
                   $i += 1;
                   if ($i == 2) { continue; }
                   foreach (array(1, 2) as $v) { if ($v == 2) { break; } echo $v; }
               }"#,
        );
        let n = chunk.ops.len() as u32;
        for op in &chunk.ops {
            let t = match op {
                Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) => *t,
                Op::IterNext { end, .. } => *end,
                _ => continue,
            };
            assert!(t <= n, "jump target {t} out of bounds in {:?}", chunk.ops);
        }
    }

    #[test]
    fn while_allocates_guard() {
        let chunk = compile_src("while (0) { }");
        assert_eq!(chunk.guards, 1);
        assert!(chunk.ops.contains(&Op::GuardReset(0)));
        assert!(chunk.ops.contains(&Op::GuardTick(0)));
    }
}
