//! PHP standard-library subset used by the WP-SQLI-LAB plugins.
//!
//! The transformation functions here are exactly the application-level
//! input manipulations the paper's NTI evasions exploit (§III-A):
//! `addslashes` (WordPress magic quotes), `trim` (whitespace stripping),
//! `base64_decode` (the one testbed plugin NTI missed), `urldecode`,
//! `str_replace`, and `preg_replace` character-class sanitizers.

use crate::interp::{PhpError, QueryOutcome, ResultSet, Runtime};
use crate::value::{is_numeric, PArray, PKey, PValue};

/// Routes one `mysql_query` text through the host and converts the
/// outcome to the PHP-visible value: a fresh resource on rows, `false`
/// plus `mysql_error()` state on error, [`PhpError::Terminated`] on kill.
/// Both engines funnel every host query through here.
pub(crate) fn host_query(rt: &mut Runtime<'_>, sql: &str) -> Result<PValue, PhpError> {
    match rt.host.query(sql) {
        QueryOutcome::Rows(rows) => {
            rt.resources.push(ResultSet { rows, cursor: 0 });
            rt.last_error.clear();
            Ok(PValue::Resource(rt.resources.len() - 1))
        }
        QueryOutcome::Error(msg) => {
            rt.last_error = msg;
            Ok(PValue::Bool(false))
        }
        QueryOutcome::Terminated => Err(PhpError::Terminated),
    }
}

/// Routes one prepared-statement text + bindings through the host,
/// converting the outcome exactly like [`host_query`].
pub(crate) fn host_query_prepared(
    rt: &mut Runtime<'_>,
    text: &str,
    bindings: &[(String, String)],
) -> Result<PValue, PhpError> {
    match rt.host.query_prepared(text, bindings) {
        QueryOutcome::Rows(rows) => {
            rt.resources.push(ResultSet { rows, cursor: 0 });
            rt.last_error.clear();
            Ok(PValue::Resource(rt.resources.len() - 1))
        }
        QueryOutcome::Error(msg) => {
            rt.last_error = msg;
            Ok(PValue::Bool(false))
        }
        QueryOutcome::Terminated => Err(PhpError::Terminated),
    }
}

/// Drupal 7 `expandArguments`: array-valued arguments expand their
/// placeholder to one placeholder per element, with names derived from
/// the *array keys* — the behaviour CVE-2014-3704 exploits, reproduced
/// faithfully here. Returns the rewritten statement text and bindings.
pub(crate) fn db_query_expand(sql: String, args: &PValue) -> (String, Vec<(String, String)>) {
    let mut text = sql;
    let mut bindings: Vec<(String, String)> = Vec::new();
    if let PValue::Array(args_arr) = args {
        for (k, v) in args_arr.iter() {
            let name = match k {
                PKey::Str(s) => s.clone(),
                PKey::Int(i) => i.to_string(),
            };
            match v {
                PValue::Array(items) => {
                    let mut expanded = Vec::with_capacity(items.len());
                    for (ik, iv) in items.iter() {
                        let suffix = match ik {
                            PKey::Int(i) => i.to_string(),
                            PKey::Str(s) => s.clone(),
                        };
                        let new_name = format!("{name}_{suffix}");
                        bindings.push((new_name.clone(), iv.to_php_string()));
                        expanded.push(new_name);
                    }
                    text = text.replace(&name, &expanded.join(", "));
                }
                scalar => bindings.push((name, scalar.to_php_string())),
            }
        }
    }
    (text, bindings)
}

/// Dispatches a call to a built-in function.
///
/// # Errors
///
/// [`PhpError::Runtime`] for unknown functions or invalid arguments;
/// [`PhpError::Terminated`] when a `mysql_query` is killed by the host.
pub(crate) fn call_builtin(
    rt: &mut Runtime<'_>,
    name: &str,
    args: Vec<PValue>,
) -> Result<PValue, PhpError> {
    let lower = name.to_ascii_lowercase();
    dispatch_builtin(rt, &lower, name, args)
}

/// [`call_builtin`] with the lowercased dispatch key precomputed — the
/// bytecode compiler lowers call names once at compile time so the VM
/// skips the per-call allocation. `name` keeps the original spelling for
/// the undefined-function error message.
pub(crate) fn dispatch_builtin(
    rt: &mut Runtime<'_>,
    lower: &str,
    name: &str,
    args: Vec<PValue>,
) -> Result<PValue, PhpError> {
    let arg = |i: usize| -> PValue { args.get(i).cloned().unwrap_or_default() };
    let sarg = |i: usize| -> String { arg(i).to_php_string() };

    match lower {
        // ---- MySQL client API ----
        "mysql_query" | "mysqli_query" => {
            let sql = sarg(if lower == "mysqli_query" { 1 } else { 0 });
            // mysqli_query($link, $sql): tolerate the 1-arg legacy shape too.
            let sql = if sql.is_empty() && lower == "mysqli_query" { sarg(0) } else { sql };
            host_query(rt, &sql)
        }
        // ---- Drupal-style database layer (prepared statements) ----
        "db_query" => {
            // db_query($sql, $args): named placeholders, expanded via
            // [`db_query_expand`].
            let (text, bindings) = db_query_expand(sarg(0), &arg(1));
            host_query_prepared(rt, &text, &bindings)
        }
        "mysql_fetch_assoc" | "mysql_fetch_array" | "mysqli_fetch_assoc" => match arg(0) {
            PValue::Resource(id) => {
                let rs = rt
                    .resources
                    .get_mut(id)
                    .ok_or_else(|| PhpError::Runtime("invalid resource".into()))?;
                if rs.cursor >= rs.rows.len() {
                    return Ok(PValue::Bool(false));
                }
                let row = &rs.rows[rs.cursor];
                rs.cursor += 1;
                let mut a = PArray::new();
                for (col, val) in row {
                    a.set(PKey::Str(col.clone()), PValue::Str(val.clone()));
                }
                Ok(PValue::Array(a))
            }
            _ => Ok(PValue::Bool(false)),
        },
        "mysql_fetch_row" => match arg(0) {
            PValue::Resource(id) => {
                let rs = rt
                    .resources
                    .get_mut(id)
                    .ok_or_else(|| PhpError::Runtime("invalid resource".into()))?;
                if rs.cursor >= rs.rows.len() {
                    return Ok(PValue::Bool(false));
                }
                let row = &rs.rows[rs.cursor];
                rs.cursor += 1;
                let mut a = PArray::new();
                for (_, val) in row {
                    a.push(PValue::Str(val.clone()));
                }
                Ok(PValue::Array(a))
            }
            _ => Ok(PValue::Bool(false)),
        },
        "mysql_num_rows" | "mysqli_num_rows" => match arg(0) {
            PValue::Resource(id) => {
                Ok(PValue::Int(rt.resources.get(id).map_or(0, |rs| rs.rows.len()) as i64))
            }
            _ => Ok(PValue::Bool(false)),
        },
        "mysql_result" => match arg(0) {
            PValue::Resource(id) => {
                let row_idx = arg(1).to_php_int() as usize;
                let rs = rt
                    .resources
                    .get(id)
                    .ok_or_else(|| PhpError::Runtime("invalid resource".into()))?;
                let row = rs.rows.get(row_idx);
                Ok(match row {
                    Some(cols) => {
                        let field = arg(2);
                        let cell = match &field {
                            PValue::Null => cols.first(),
                            PValue::Str(name) => cols.iter().find(|(c, _)| c == name),
                            other => cols.get(other.to_php_int() as usize),
                        };
                        cell.map_or(PValue::Bool(false), |(_, v)| PValue::Str(v.clone()))
                    }
                    None => PValue::Bool(false),
                })
            }
            _ => Ok(PValue::Bool(false)),
        },
        "mysql_error" | "mysqli_error" => Ok(PValue::Str(rt.last_error.clone())),
        "mysql_real_escape_string" | "mysqli_real_escape_string" | "esc_sql" | "addslashes" => {
            Ok(PValue::Str(addslashes(&sarg(
                if lower.ends_with("real_escape_string") && args.len() > 1 { 1 } else { 0 },
            ))))
        }
        "stripslashes" => Ok(PValue::Str(stripslashes(&sarg(0)))),

        // ---- string transformations ----
        "trim" => Ok(PValue::Str(sarg(0).trim().to_string())),
        "ltrim" => Ok(PValue::Str(sarg(0).trim_start().to_string())),
        "rtrim" | "chop" => Ok(PValue::Str(sarg(0).trim_end().to_string())),
        "strtolower" => Ok(PValue::Str(sarg(0).to_ascii_lowercase())),
        "strtoupper" => Ok(PValue::Str(sarg(0).to_ascii_uppercase())),
        "strlen" => Ok(PValue::Int(sarg(0).len() as i64)),
        "strrev" => Ok(PValue::Str(sarg(0).chars().rev().collect())),
        "str_replace" => {
            let search = arg(0);
            let replace = sarg(1);
            let mut subject = sarg(2);
            match search {
                PValue::Array(a) => {
                    for (_, s) in a.iter() {
                        subject = subject.replace(&s.to_php_string(), &replace);
                    }
                }
                other => subject = subject.replace(&other.to_php_string(), &replace),
            }
            Ok(PValue::Str(subject))
        }
        "substr" => {
            let s = sarg(0);
            let start = arg(1).to_php_int();
            let len = args.get(2).map(|v| v.to_php_int());
            Ok(PValue::Str(php_substr(&s, start, len)))
        }
        "strpos" => {
            let hay = sarg(0);
            let needle = sarg(1);
            match hay.find(&needle) {
                Some(i) => Ok(PValue::Int(i as i64)),
                None => Ok(PValue::Bool(false)),
            }
        }
        "str_repeat" => Ok(PValue::Str(sarg(0).repeat(arg(1).to_php_int().max(0) as usize))),
        "implode" | "join" => {
            // implode(glue, pieces) or implode(pieces)
            let (glue, pieces) =
                if args.len() >= 2 { (sarg(0), arg(1)) } else { (String::new(), arg(0)) };
            match pieces {
                PValue::Array(a) => {
                    let parts: Vec<String> = a.iter().map(|(_, v)| v.to_php_string()).collect();
                    Ok(PValue::Str(parts.join(&glue)))
                }
                _ => Ok(PValue::Str(String::new())),
            }
        }
        "explode" => {
            let sep = sarg(0);
            let s = sarg(1);
            let mut a = PArray::new();
            if sep.is_empty() {
                return Ok(PValue::Bool(false));
            }
            for piece in s.split(&sep) {
                a.push(PValue::Str(piece.to_string()));
            }
            Ok(PValue::Array(a))
        }
        "sprintf" => Ok(PValue::Str(php_sprintf(&sarg(0), &args[1..]))),
        "number_format" => {
            let n = arg(0).to_php_float();
            Ok(PValue::Str(format!("{}", n.round() as i64)))
        }
        "htmlspecialchars" | "esc_html" | "esc_attr" => {
            let s = sarg(0)
                .replace('&', "&amp;")
                .replace('<', "&lt;")
                .replace('>', "&gt;")
                .replace('"', "&quot;");
            Ok(PValue::Str(s))
        }
        "urldecode" | "rawurldecode" => Ok(PValue::Str(urldecode(&sarg(0)))),
        "urlencode" | "rawurlencode" => Ok(PValue::Str(urlencode(&sarg(0)))),
        "base64_decode" => Ok(PValue::Str(base64_decode(&sarg(0)).unwrap_or_default())),
        "base64_encode" => Ok(PValue::Str(base64_encode(sarg(0).as_bytes()))),
        "md5" => Ok(PValue::Str(pseudo_md5(&sarg(0)))),
        "preg_replace" => {
            let pattern = sarg(0);
            let replacement = sarg(1);
            let subject = sarg(2);
            preg_replace(&pattern, &replacement, &subject).map(PValue::Str).ok_or_else(|| {
                PhpError::Runtime(format!("unsupported preg_replace pattern {pattern}"))
            })
        }
        "preg_match" => {
            let pattern = sarg(0);
            let subject = sarg(1);
            preg_match(&pattern, &subject).map(|m| PValue::Int(i64::from(m))).ok_or_else(|| {
                PhpError::Runtime(format!("unsupported preg_match pattern {pattern}"))
            })
        }

        // ---- numeric / type functions ----
        "intval" | "absint" => {
            let v = arg(0).to_php_int();
            Ok(PValue::Int(if lower == "absint" { v.abs() } else { v }))
        }
        "floatval" | "doubleval" => Ok(PValue::Float(arg(0).to_php_float())),
        "strval" => Ok(PValue::Str(sarg(0))),
        "abs" => Ok(PValue::Float(arg(0).to_php_float().abs())),
        "is_numeric" => Ok(PValue::Bool(is_numeric(&sarg(0)))),
        "is_array" => Ok(PValue::Bool(matches!(arg(0), PValue::Array(_)))),
        "is_string" => Ok(PValue::Bool(matches!(arg(0), PValue::Str(_)))),
        "count" | "sizeof" => match arg(0) {
            PValue::Array(a) => Ok(PValue::Int(a.len() as i64)),
            PValue::Null => Ok(PValue::Int(0)),
            _ => Ok(PValue::Int(1)),
        },
        "array_keys" => match arg(0) {
            PValue::Array(a) => {
                let mut out = PArray::new();
                for (k, _) in a.iter() {
                    out.push(match k {
                        PKey::Int(i) => PValue::Int(*i),
                        PKey::Str(s) => PValue::Str(s.clone()),
                    });
                }
                Ok(PValue::Array(out))
            }
            _ => Ok(PValue::Bool(false)),
        },
        "array_map" => {
            // Only the (callable-name, array) shape with a builtin callable.
            let callable = sarg(0);
            match arg(1) {
                PValue::Array(a) => {
                    let mut out = PArray::new();
                    for (k, v) in a.iter() {
                        let mapped = call_builtin(rt, &callable, vec![v.clone()])?;
                        out.set(k.clone(), mapped);
                    }
                    Ok(PValue::Array(out))
                }
                _ => Ok(PValue::Bool(false)),
            }
        }
        "in_array" => {
            let needle = arg(0);
            match arg(1) {
                PValue::Array(a) => Ok(PValue::Bool(a.iter().any(|(_, v)| v.loose_eq(&needle)))),
                _ => Ok(PValue::Bool(false)),
            }
        }

        // ---- misc WordPress-flavoured helpers ----
        "wp_magic_quotes" | "magic_quotes" => Ok(PValue::Str(addslashes(&sarg(0)))),
        "sanitize_text_field" => Ok(PValue::Str(sarg(0).trim().to_string())),
        "current_time" | "time" => Ok(PValue::Int(1_400_000_000)),
        "rand" | "mt_rand" => Ok(PValue::Int(4)), // deterministic for tests
        "error_log" | "header" | "setcookie" | "session_start" | "ob_start" => Ok(PValue::Null),

        _ => Err(PhpError::Runtime(format!("call to undefined function {name}()"))),
    }
}

/// PHP `addslashes`: backslash-escape quotes, double quotes, backslashes
/// and NUL — the magic-quotes transformation WordPress applies to all
/// request input.
pub fn addslashes(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\'' | '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            '\0' => out.push_str("\\0"),
            _ => out.push(c),
        }
    }
    out
}

/// PHP `stripslashes`.
pub fn stripslashes(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('0') => out.push('\0'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn php_substr(s: &str, start: i64, len: Option<i64>) -> String {
    let n = s.len() as i64;
    let mut begin = if start < 0 { (n + start).max(0) } else { start.min(n) };
    let mut end = match len {
        None => n,
        Some(l) if l < 0 => (n + l).max(begin),
        Some(l) => (begin + l).min(n),
    };
    begin = begin.clamp(0, n);
    end = end.clamp(begin, n);
    s.get(begin as usize..end as usize).unwrap_or("").to_string()
}

/// Minimal `sprintf`: `%s`, `%d`, `%f`, `%%` and `%0Nd`.
pub fn php_sprintf(format: &str, args: &[PValue]) -> String {
    let mut out = String::with_capacity(format.len());
    let mut ai = 0;
    let mut chars = format.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Collect optional zero-pad width.
        let mut width = String::new();
        while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
            width.push(chars.next().unwrap());
        }
        match chars.next() {
            Some('%') => out.push('%'),
            Some('s') => {
                out.push_str(&args.get(ai).cloned().unwrap_or_default().to_php_string());
                ai += 1;
            }
            Some('d') => {
                let v = args.get(ai).cloned().unwrap_or_default().to_php_int();
                ai += 1;
                if let Ok(w) = width.parse::<usize>() {
                    out.push_str(&format!("{v:0w$}"));
                } else {
                    out.push_str(&v.to_string());
                }
            }
            Some('f') => {
                let v = args.get(ai).cloned().unwrap_or_default().to_php_float();
                ai += 1;
                out.push_str(&format!("{v:.6}"));
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

/// Percent-decoding (PHP `urldecode`, including `+` as space).
pub fn urldecode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                if i + 2 < bytes.len() {
                    if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                        out.push(v);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encoding (PHP `urlencode`).
pub fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

const B64_ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Base64 encoding (RFC 4648, with padding).
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let idx = [(n >> 18) & 63, (n >> 12) & 63, (n >> 6) & 63, n & 63];
        out.push(B64_ALPHABET[idx[0] as usize] as char);
        out.push(B64_ALPHABET[idx[1] as usize] as char);
        out.push(if chunk.len() > 1 { B64_ALPHABET[idx[2] as usize] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64_ALPHABET[idx[3] as usize] as char } else { '=' });
    }
    out
}

/// Base64 decoding; `None` on invalid input. Lenient about whitespace,
/// like PHP.
pub fn base64_decode(s: &str) -> Option<String> {
    let mut vals = Vec::with_capacity(s.len());
    for c in s.bytes() {
        if c.is_ascii_whitespace() || c == b'=' {
            continue;
        }
        let v = B64_ALPHABET.iter().position(|&a| a == c)?;
        vals.push(v as u32);
    }
    let mut out = Vec::with_capacity(vals.len() * 3 / 4);
    for chunk in vals.chunks(4) {
        let mut n = 0u32;
        for (i, &v) in chunk.iter().enumerate() {
            n |= v << (18 - 6 * i);
        }
        out.push((n >> 16) as u8);
        if chunk.len() > 2 {
            out.push((n >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(n as u8);
        }
    }
    Some(String::from_utf8_lossy(&out).into_owned())
}

/// A deterministic stand-in for `md5` (not cryptographic — the testbed
/// only needs a stable 32-hex-digit digest).
pub fn pseudo_md5(s: &str) -> String {
    let mut h1: u64 = 0xcbf29ce484222325;
    let mut h2: u64 = 0x9e3779b97f4a7c15;
    for &b in s.as_bytes() {
        h1 = (h1 ^ u64::from(b)).wrapping_mul(0x100000001b3);
        h2 = h2.rotate_left(7) ^ u64::from(b).wrapping_mul(0x2545F4914F6CDD1D);
    }
    format!("{h1:016x}{h2:016x}")
}

/// Supported `preg_replace` subset: `/[charclass]/` and `/[charclass]+/`
/// patterns with optional `i` flag, plus plain literal patterns
/// (`/literal/`). Returns `None` for unsupported patterns.
pub fn preg_replace(pattern: &str, replacement: &str, subject: &str) -> Option<String> {
    let (body, ci) = split_pattern(pattern)?;
    if let Some(class) = parse_char_class(body) {
        let mut out = String::with_capacity(subject.len());
        let mut i = 0;
        let chars: Vec<char> = subject.chars().collect();
        while i < chars.len() {
            if class.matches(chars[i], ci) {
                // A `+` quantifier collapses a run into one replacement.
                if class.plus {
                    while i < chars.len() && class.matches(chars[i], ci) {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
                out.push_str(replacement);
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        return Some(out);
    }
    // Literal pattern (no metacharacters).
    if body.chars().all(|c| !"[](){}.*+?^$|\\".contains(c)) {
        if ci {
            // Case-insensitive literal replace.
            let mut out = String::new();
            let lower_subj = subject.to_lowercase();
            let lower_pat = body.to_lowercase();
            let mut start = 0;
            while let Some(pos) = lower_subj[start..].find(&lower_pat) {
                let abs = start + pos;
                out.push_str(&subject[start..abs]);
                out.push_str(replacement);
                start = abs + body.len();
            }
            out.push_str(&subject[start..]);
            return Some(out);
        }
        return Some(subject.replace(body, replacement));
    }
    None
}

/// Supported `preg_match` subset: same patterns as [`preg_replace`];
/// returns whether the subject matches anywhere.
pub fn preg_match(pattern: &str, subject: &str) -> Option<bool> {
    let (body, ci) = split_pattern(pattern)?;
    if let Some(class) = parse_char_class(body) {
        return Some(subject.chars().any(|c| class.matches(c, ci)));
    }
    if body.chars().all(|c| !"[](){}.*+?^$|\\".contains(c)) {
        if ci {
            return Some(subject.to_lowercase().contains(&body.to_lowercase()));
        }
        return Some(subject.contains(body));
    }
    None
}

fn split_pattern(pattern: &str) -> Option<(&str, bool)> {
    let delim = pattern.chars().next()?;
    if delim != '/' && delim != '#' && delim != '~' {
        return None;
    }
    let rest = &pattern[1..];
    let close = rest.rfind(delim)?;
    let body = &rest[..close];
    let flags = &rest[close + 1..];
    if flags.chars().any(|f| f != 'i' && f != 'u' && f != 's') {
        return None;
    }
    Some((body, flags.contains('i')))
}

struct CharClass {
    negated: bool,
    singles: Vec<char>,
    ranges: Vec<(char, char)>,
    plus: bool,
}

impl CharClass {
    fn matches(&self, c: char, ci: bool) -> bool {
        let test = |c: char| {
            self.singles.contains(&c) || self.ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi)
        };
        let mut hit = test(c);
        if ci && !hit {
            hit = test(c.to_ascii_lowercase()) || test(c.to_ascii_uppercase());
        }
        hit != self.negated
    }
}

fn parse_char_class(body: &str) -> Option<CharClass> {
    // Bare shorthand classes: `\d`, `\w`, `\s` (with optional `+`).
    let body = match body {
        "\\d" => "[0-9]",
        "\\d+" => "[0-9]+",
        "\\w" => "[a-zA-Z0-9_]",
        "\\w+" => "[a-zA-Z0-9_]+",
        "\\s" => "[ \t\n\r]",
        "\\s+" => "[ \t\n\r]+",
        other => other,
    };
    let stripped = body.strip_prefix('[')?;
    let (inner, plus) = if let Some(i) = stripped.strip_suffix("]+") {
        (i, true)
    } else if let Some(i) = stripped.strip_suffix(']') {
        (i, false)
    } else {
        return None;
    };
    let (negated, inner) = match inner.strip_prefix('^') {
        Some(rest) => (true, rest),
        None => (false, inner),
    };
    let mut singles = Vec::new();
    let mut ranges = Vec::new();
    let chars: Vec<char> = inner.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 1;
            match chars[i] {
                'd' => {
                    ranges.push(('0', '9'));
                    i += 1;
                    continue;
                }
                'w' => {
                    ranges.push(('a', 'z'));
                    ranges.push(('A', 'Z'));
                    ranges.push(('0', '9'));
                    singles.push('_');
                    i += 1;
                    continue;
                }
                's' => {
                    singles.extend([' ', '\t', '\n', '\r']);
                    i += 1;
                    continue;
                }
                other => other,
            }
        } else {
            chars[i]
        };
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            ranges.push((c, chars[i + 2]));
            i += 3;
        } else {
            singles.push(c);
            i += 1;
        }
    }
    Some(CharClass { negated, singles, ranges, plus })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addslashes_roundtrip() {
        let s = r#"it's "quoted" \ back"#;
        assert_eq!(stripslashes(&addslashes(s)), s);
        assert_eq!(addslashes("a'b"), r"a\'b");
    }

    #[test]
    fn substr_semantics() {
        assert_eq!(php_substr("abcdef", 1, Some(3)), "bcd");
        assert_eq!(php_substr("abcdef", -2, None), "ef");
        assert_eq!(php_substr("abcdef", 0, Some(-2)), "abcd");
        assert_eq!(php_substr("abc", 10, None), "");
    }

    #[test]
    fn sprintf_basic() {
        assert_eq!(
            php_sprintf(
                "SELECT * FROM t WHERE id=%d AND name='%s'",
                &[PValue::Str("7x".into()), PValue::Str("bob".into())]
            ),
            "SELECT * FROM t WHERE id=7 AND name='bob'"
        );
        assert_eq!(php_sprintf("%05d%%", &[PValue::Int(42)]), "00042%");
    }

    #[test]
    fn url_roundtrip() {
        let s = "a b&c=1'--";
        assert_eq!(urldecode(&urlencode(s)), s);
        assert_eq!(urldecode("%27%20OR%201%3D1"), "' OR 1=1");
    }

    #[test]
    fn base64_roundtrip() {
        for s in ["", "a", "ab", "abc", "-1 UNION SELECT user_pass FROM wp_users"] {
            assert_eq!(base64_decode(&base64_encode(s.as_bytes())).unwrap(), s);
        }
        assert!(base64_decode("!!!").is_none());
    }

    #[test]
    fn md5_stable_and_hexlike() {
        let h = pseudo_md5("hello");
        assert_eq!(h.len(), 32);
        assert_eq!(h, pseudo_md5("hello"));
        assert_ne!(h, pseudo_md5("hellp"));
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn preg_replace_charclass() {
        assert_eq!(preg_replace("/[^0-9]/", "", "a1b2c3").unwrap(), "123");
        assert_eq!(preg_replace("/[^a-zA-Z0-9_]/", "", "x'; DROP--").unwrap(), "xDROP");
        assert_eq!(preg_replace("/[0-9]+/", "N", "a12b345").unwrap(), "aNbN");
        assert_eq!(preg_replace("/\\d/", "#", "a1b2").unwrap(), "a#b#");
    }

    #[test]
    fn preg_replace_literal() {
        assert_eq!(preg_replace("/foo/", "bar", "a foo b").unwrap(), "a bar b");
        assert_eq!(preg_replace("/FOO/i", "bar", "a foo b").unwrap(), "a bar b");
        assert!(preg_replace("/(a|b)*/", "x", "ab").is_none()); // unsupported
    }

    #[test]
    fn preg_match_subset() {
        assert_eq!(preg_match("/[0-9]/", "abc1"), Some(true));
        assert_eq!(preg_match("/[0-9]/", "abc"), Some(false));
        assert_eq!(preg_match("/union/i", "UNION SELECT"), Some(true));
    }
}
