//! Tree-walking evaluator for the PHP subset.
//!
//! The interpreter executes a plugin script against a [`Host`], which
//! receives every `mysql_query` call. In the full system the host is the
//! web-app framework's database bridge: it routes the query through Joza's
//! hybrid analysis and only then to the in-memory engine. A
//! [`QueryOutcome::Terminated`] from the host aborts the script — the
//! paper's *termination* recovery policy, which "typically results in a
//! blank HTML page returned to the end user" (§IV-E).

use crate::ast::*;
use crate::builtins;
use crate::value::{PArray, PKey, PValue};
use std::collections::HashMap;
use std::fmt;

/// The result of a host-executed SQL query, as seen by PHP code.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// A result set: rows of `(column, value)` pairs. MySQL's client
    /// protocol returns strings, so values are strings here. Writes
    /// report an empty row set.
    Rows(Vec<Vec<(String, String)>>),
    /// The query failed (syntax error, unknown table, or Joza's *error
    /// virtualization* recovery policy). `mysql_query` returns `false` and
    /// `mysql_error()` reports the message.
    Error(String),
    /// Joza's *termination* recovery policy fired: the application is
    /// killed mid-request.
    Terminated,
}

/// The environment a PHP script runs against.
pub trait Host {
    /// Executes one SQL query.
    fn query(&mut self, sql: &str) -> QueryOutcome;

    /// Prepares `sql` (which may contain `:name` placeholders) and
    /// executes it with the given bindings — the PDO/Drupal-style path.
    /// Values bound here are data by contract and must never be parsed as
    /// SQL; the *statement text* is still subject to interception.
    ///
    /// The default implementation reports prepared statements as
    /// unsupported so simple hosts need not implement them.
    fn query_prepared(&mut self, sql: &str, params: &[(String, String)]) -> QueryOutcome {
        let _ = (sql, params);
        QueryOutcome::Error("prepared statements not supported by this host".into())
    }
}

/// A runtime error (or control-flow signal) from PHP execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhpError {
    /// A genuine runtime error (undefined function, bad argument, …).
    Runtime(String),
    /// The host terminated the application (Joza kill policy).
    Terminated,
}

impl fmt::Display for PhpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhpError::Runtime(m) => write!(f, "PHP runtime error: {m}"),
            PhpError::Terminated => f.write_str("application terminated by Joza"),
        }
    }
}

impl std::error::Error for PhpError {}

/// Internal control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

/// A cursor over a query result set backing a PHP resource.
#[derive(Debug, Clone)]
pub(crate) struct ResultSet {
    pub(crate) rows: Vec<Vec<(String, String)>>,
    pub(crate) cursor: usize,
}

/// Engine-shared runtime state: the host connection plus the result-set
/// and error registers the SQL builtins operate on. Both the tree-walking
/// [`Interp`] and the bytecode [`crate::vm::Vm`] embed one, so
/// [`crate::builtins`] behaves identically under either engine.
pub(crate) struct Runtime<'h> {
    pub(crate) host: &'h mut dyn Host,
    pub(crate) resources: Vec<ResultSet>,
    pub(crate) last_error: String,
}

impl<'h> Runtime<'h> {
    pub(crate) fn new(host: &'h mut dyn Host) -> Self {
        Runtime { host, resources: Vec::new(), last_error: String::new() }
    }
}

/// The PHP interpreter.
pub struct Interp<'h> {
    pub(crate) vars: HashMap<String, PValue>,
    pub(crate) rt: Runtime<'h>,
    pub(crate) output: String,
    halted: bool,
}

impl<'h> fmt::Debug for Interp<'h> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interp")
            .field("vars", &self.vars.len())
            .field("output_len", &self.output.len())
            .finish_non_exhaustive()
    }
}

impl<'h> Interp<'h> {
    /// Creates an interpreter bound to `host` with empty superglobals.
    pub fn new(host: &'h mut dyn Host) -> Self {
        let mut vars = HashMap::new();
        for sg in ["_GET", "_POST", "_COOKIE", "_REQUEST", "_SERVER"] {
            vars.insert(sg.to_string(), PValue::Array(PArray::new()));
        }
        Interp { vars, rt: Runtime::new(host), output: String::new(), halted: false }
    }

    /// Sets a `$_GET` parameter (also mirrored into `$_REQUEST`).
    pub fn set_get_param(&mut self, key: &str, value: &str) {
        self.set_superglobal("_GET", key, value);
        self.set_superglobal("_REQUEST", key, value);
    }

    /// Sets a `$_POST` parameter (also mirrored into `$_REQUEST`).
    pub fn set_post_param(&mut self, key: &str, value: &str) {
        self.set_superglobal("_POST", key, value);
        self.set_superglobal("_REQUEST", key, value);
    }

    /// Sets a `$_COOKIE` value.
    pub fn set_cookie(&mut self, key: &str, value: &str) {
        self.set_superglobal("_COOKIE", key, value);
    }

    /// Sets a `$_SERVER` entry (e.g. `HTTP_USER_AGENT`, `REMOTE_ADDR`).
    pub fn set_server_var(&mut self, key: &str, value: &str) {
        self.set_superglobal("_SERVER", key, value);
    }

    fn set_superglobal(&mut self, global: &str, key: &str, value: &str) {
        if let Some(PValue::Array(a)) = self.vars.get_mut(global) {
            set_superglobal_entry(a, key, value);
        }
    }

    /// Everything the script `echo`ed so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Reads a variable (for assertions in tests/harnesses).
    pub fn var(&self, name: &str) -> Option<&PValue> {
        self.vars.get(name)
    }

    /// Runs a program to completion.
    ///
    /// # Errors
    ///
    /// [`PhpError::Terminated`] if the host killed the request;
    /// [`PhpError::Runtime`] on genuine script errors.
    pub fn run(&mut self, program: &[Stmt]) -> Result<(), PhpError> {
        self.exec_block(program)?;
        Ok(())
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, PhpError> {
        for stmt in stmts {
            if self.halted {
                return Ok(Flow::Return);
            }
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, PhpError> {
        match stmt {
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::Assign { var, indices, op, expr } => {
                let rhs = self.eval(expr)?;
                self.assign(var, indices, *op, rhs)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_branch, else_branch } => {
                if self.eval(cond)?.to_php_bool() {
                    self.exec_block(then_branch)
                } else {
                    self.exec_block(else_branch)
                }
            }
            Stmt::While { cond, body } => {
                let mut guard = 0usize;
                while self.eval(cond)?.to_php_bool() {
                    guard += 1;
                    if guard > 1_000_000 {
                        return Err(PhpError::Runtime("loop iteration limit exceeded".into()));
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Foreach { array, key_var, val_var, body } => {
                let arr = match self.eval(array)? {
                    PValue::Array(a) => a,
                    _ => return Ok(Flow::Normal), // PHP warns; we skip
                };
                for (k, v) in arr.iter() {
                    if let Some(kv) = key_var {
                        let key_val = match k {
                            PKey::Int(i) => PValue::Int(*i),
                            PKey::Str(s) => PValue::Str(s.clone()),
                        };
                        self.vars.insert(kv.clone(), key_val);
                    }
                    self.vars.insert(val_var.clone(), v.clone());
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Echo(exprs) => {
                for e in exprs {
                    let v = self.eval(e)?;
                    self.output.push_str(&v.to_php_string());
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(value) => {
                if let Some(v) = value {
                    self.eval(v)?;
                }
                self.halted = true;
                Ok(Flow::Return)
            }
            Stmt::Exit(value) => {
                if let Some(v) = value {
                    let msg = self.eval(v)?;
                    if let PValue::Str(s) = msg {
                        self.output.push_str(&s);
                    }
                }
                self.halted = true;
                Ok(Flow::Return)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn assign(
        &mut self,
        var: &str,
        indices: &[Option<Expr>],
        op: Option<AssignOp>,
        rhs: PValue,
    ) -> Result<(), PhpError> {
        if indices.is_empty() {
            let new = match op {
                None => rhs,
                Some(aop) => {
                    let old = self.vars.get(var).cloned().unwrap_or_default();
                    apply_assign_op(aop, &old, &rhs)
                }
            };
            self.vars.insert(var.to_string(), new);
            return Ok(());
        }
        // Indexed assignment: resolve index values first, then walk/create
        // nested arrays.
        let mut keys: Vec<Option<PKey>> = Vec::with_capacity(indices.len());
        for idx in indices {
            match idx {
                Some(e) => {
                    let v = self.eval(e)?;
                    keys.push(Some(PKey::from_value(&v)));
                }
                None => keys.push(None),
            }
        }
        let root = self.vars.entry(var.to_string()).or_insert_with(|| PValue::Array(PArray::new()));
        assign_into(root, &keys, op, rhs)
    }

    pub(crate) fn eval(&mut self, expr: &Expr) -> Result<PValue, PhpError> {
        match expr {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(name) => Ok(self.vars.get(name).cloned().unwrap_or_default()),
            Expr::Interp(parts) => {
                let mut s = String::new();
                for p in parts {
                    match p {
                        InterpPart::Lit(l) => s.push_str(l),
                        InterpPart::Var(v) => {
                            let val = self.vars.get(v).cloned().unwrap_or_default();
                            s.push_str(&val.to_php_string());
                        }
                    }
                }
                Ok(PValue::Str(s))
            }
            Expr::Index { base, index } => {
                let b = self.eval(base)?;
                let i = self.eval(index)?;
                Ok(index_read(&b, &i))
            }
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                builtins::call_builtin(&mut self.rt, name, vals)
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr)?;
                Ok(match op {
                    UnaryOp::Not => PValue::Bool(!v.to_php_bool()),
                    UnaryOp::Neg => match v {
                        PValue::Int(i) => PValue::Int(-i),
                        other => PValue::Float(-other.to_php_float()),
                    },
                    UnaryOp::Silence => v,
                })
            }
            Expr::Binary { left, op, right } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        let l = self.eval(left)?;
                        if !l.to_php_bool() {
                            return Ok(PValue::Bool(false));
                        }
                        let r = self.eval(right)?;
                        return Ok(PValue::Bool(r.to_php_bool()));
                    }
                    BinOp::Or => {
                        let l = self.eval(left)?;
                        if l.to_php_bool() {
                            return Ok(PValue::Bool(true));
                        }
                        let r = self.eval(right)?;
                        return Ok(PValue::Bool(r.to_php_bool()));
                    }
                    _ => {}
                }
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                Ok(eval_binop(*op, &l, &r))
            }
            Expr::Ternary { cond, then_val, else_val } => {
                let c = self.eval(cond)?;
                if c.to_php_bool() {
                    match then_val {
                        Some(t) => self.eval(t),
                        None => Ok(c),
                    }
                } else {
                    self.eval(else_val)
                }
            }
            Expr::ArrayLit(items) => {
                let mut arr = PArray::new();
                for (key, value) in items {
                    let v = self.eval(value)?;
                    match key {
                        Some(k) => {
                            let kv = self.eval(k)?;
                            arr.set(PKey::from_value(&kv), v);
                        }
                        None => arr.push(v),
                    }
                }
                Ok(PValue::Array(arr))
            }
            Expr::Isset(exprs) => {
                for e in exprs {
                    if !self.isset(e)? {
                        return Ok(PValue::Bool(false));
                    }
                }
                Ok(PValue::Bool(true))
            }
            Expr::Empty(e) => {
                let v = self.eval(e)?;
                Ok(PValue::Bool(!v.to_php_bool()))
            }
            Expr::AssignExpr { var, expr } => {
                let v = self.eval(expr)?;
                self.vars.insert(var.clone(), v.clone());
                Ok(v)
            }
        }
    }

    fn isset(&mut self, e: &Expr) -> Result<bool, PhpError> {
        match e {
            Expr::Var(name) => Ok(self.vars.get(name).is_some_and(|v| !matches!(v, PValue::Null))),
            Expr::Index { base, index } => {
                let b = self.eval(base)?;
                let i = self.eval(index)?;
                Ok(isset_index(&b, &i))
            }
            _ => Ok(true),
        }
    }
}

/// Populates one request parameter into a superglobal array, including
/// PHP's bracket syntax: `ids[k]=v` populates `$_GET['ids']['k']`. Both
/// the base name and the *inner key* are attacker-chosen — the channel
/// CVE-2014-3704 (Drupal expandArguments) abuses. Shared verbatim by both
/// engines so request setup is bit-identical.
pub(crate) fn set_superglobal_entry(a: &mut PArray, key: &str, value: &str) {
    if let Some((base, sub)) = split_bracket_key(key) {
        let inner = match a.get(&PKey::Str(base.to_string())) {
            Some(PValue::Array(existing)) => {
                let mut copy = existing.clone();
                copy.set(
                    PKey::from_value(&PValue::Str(sub.to_string())),
                    PValue::Str(value.to_string()),
                );
                copy
            }
            _ => {
                let mut fresh = PArray::new();
                fresh.set(
                    PKey::from_value(&PValue::Str(sub.to_string())),
                    PValue::Str(value.to_string()),
                );
                fresh
            }
        };
        a.set(PKey::Str(base.to_string()), PValue::Array(inner));
    } else {
        a.set(PKey::Str(key.to_string()), PValue::Str(value.to_string()));
    }
}

/// Indexed assignment `$a[k1][k2]… op= rhs`: walks (and creates) nested
/// arrays along the resolved key path. `None` keys are `$a[]` appends.
/// Shared by both engines — the tree-walker and the VM's `StoreIndex` op.
pub(crate) fn assign_into(
    target: &mut PValue,
    keys: &[Option<PKey>],
    op: Option<AssignOp>,
    rhs: PValue,
) -> Result<(), PhpError> {
    let PValue::Array(arr) = target else {
        *target = PValue::Array(PArray::new());
        return assign_into(target, keys, op, rhs);
    };
    match keys {
        [] => unreachable!("assign called with empty key path"),
        [None] => {
            arr.push(rhs);
            Ok(())
        }
        [Some(k)] => {
            let new = match op {
                None => rhs,
                Some(aop) => {
                    let old = arr.get(k).cloned().unwrap_or_default();
                    apply_assign_op(aop, &old, &rhs)
                }
            };
            arr.set(k.clone(), new);
            Ok(())
        }
        [first, rest @ ..] => {
            let key = match first {
                Some(k) => k.clone(),
                None => {
                    // `$a[]['k'] = v`: append an array then descend.
                    arr.push(PValue::Array(PArray::new()));
                    let last = arr.iter().last().map(|(k, _)| k.clone()).unwrap();
                    last
                }
            };
            if arr.get(&key).is_none() {
                arr.set(key.clone(), PValue::Array(PArray::new()));
            }
            // Re-borrow mutably via a rebuild: PArray has no get_mut;
            // emulate by taking, mutating, re-setting.
            let mut sub = arr.get(&key).cloned().unwrap();
            assign_into(&mut sub, rest, op, rhs)?;
            arr.set(key, sub);
            Ok(())
        }
    }
}

/// The `expr[index]` read: array lookup, string byte slicing, `Null`
/// otherwise. Shared by both engines.
pub(crate) fn index_read(b: &PValue, i: &PValue) -> PValue {
    match b {
        PValue::Array(a) => a.get(&PKey::from_value(i)).cloned().unwrap_or_default(),
        PValue::Str(s) => {
            let idx = i.to_php_int();
            if idx >= 0 && (idx as usize) < s.len() {
                PValue::Str(s[idx as usize..idx as usize + 1].to_string())
            } else {
                PValue::Str(String::new())
            }
        }
        _ => PValue::Null,
    }
}

/// `isset($base[$index])` after both operands evaluated: only array bases
/// can be set, and a `Null` element counts as unset. Shared by both
/// engines.
pub(crate) fn isset_index(b: &PValue, i: &PValue) -> bool {
    match b {
        PValue::Array(a) => a.get(&PKey::from_value(i)).is_some_and(|v| !matches!(v, PValue::Null)),
        _ => false,
    }
}

pub(crate) fn apply_assign_op(op: AssignOp, old: &PValue, rhs: &PValue) -> PValue {
    match op {
        AssignOp::Concat => PValue::Str(format!("{}{}", old.to_php_string(), rhs.to_php_string())),
        AssignOp::Add => numeric_binop(old, rhs, |a, b| a + b),
        AssignOp::Sub => numeric_binop(old, rhs, |a, b| a - b),
    }
}

fn numeric_binop(l: &PValue, r: &PValue, f: impl Fn(f64, f64) -> f64) -> PValue {
    let result = f(l.to_php_float(), r.to_php_float());
    if result == result.trunc()
        && matches!(l, PValue::Int(_) | PValue::Str(_) | PValue::Null | PValue::Bool(_))
        && matches!(r, PValue::Int(_) | PValue::Str(_) | PValue::Null | PValue::Bool(_))
        && result.abs() < 9e15
    {
        PValue::Int(result as i64)
    } else {
        PValue::Float(result)
    }
}

pub(crate) fn eval_binop(op: BinOp, l: &PValue, r: &PValue) -> PValue {
    match op {
        BinOp::Concat => PValue::Str(format!("{}{}", l.to_php_string(), r.to_php_string())),
        BinOp::Add => numeric_binop(l, r, |a, b| a + b),
        BinOp::Sub => numeric_binop(l, r, |a, b| a - b),
        BinOp::Mul => numeric_binop(l, r, |a, b| a * b),
        BinOp::Div => {
            let d = r.to_php_float();
            if d == 0.0 {
                PValue::Bool(false) // PHP 5 warns and yields false
            } else {
                PValue::Float(l.to_php_float() / d)
            }
        }
        BinOp::Mod => {
            let d = r.to_php_int();
            if d == 0 {
                PValue::Bool(false)
            } else {
                PValue::Int(l.to_php_int() % d)
            }
        }
        BinOp::Eq => PValue::Bool(l.loose_eq(r)),
        BinOp::NotEq => PValue::Bool(!l.loose_eq(r)),
        BinOp::Identical => PValue::Bool(l.strict_eq(r)),
        BinOp::NotIdentical => PValue::Bool(!l.strict_eq(r)),
        BinOp::Lt => PValue::Bool(php_cmp(l, r) == std::cmp::Ordering::Less),
        BinOp::Gt => PValue::Bool(php_cmp(l, r) == std::cmp::Ordering::Greater),
        BinOp::LtEq => PValue::Bool(php_cmp(l, r) != std::cmp::Ordering::Greater),
        BinOp::GtEq => PValue::Bool(php_cmp(l, r) != std::cmp::Ordering::Less),
        BinOp::And | BinOp::Or => unreachable!("short-circuited in eval"),
    }
}

/// Splits a PHP bracket-syntax parameter name `base[sub]` into
/// `(base, sub)`; returns `None` for plain names.
fn split_bracket_key(key: &str) -> Option<(&str, &str)> {
    let open = key.find('[')?;
    let close = key.rfind(']')?;
    if open == 0 || close != key.len() - 1 || close <= open {
        return None;
    }
    Some((&key[..open], &key[open + 1..close]))
}

fn php_cmp(l: &PValue, r: &PValue) -> std::cmp::Ordering {
    use crate::value::is_numeric;
    if let (PValue::Str(a), PValue::Str(b)) = (l, r) {
        if !(is_numeric(a) && is_numeric(b)) {
            return a.cmp(b);
        }
    }
    l.to_php_float().partial_cmp(&r.to_php_float()).unwrap_or(std::cmp::Ordering::Equal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// A host that records queries and returns canned rows.
    pub(crate) struct FakeHost {
        pub queries: Vec<String>,
        pub rows: Vec<Vec<(String, String)>>,
        pub terminate: bool,
    }

    impl FakeHost {
        pub fn new() -> Self {
            FakeHost { queries: Vec::new(), rows: Vec::new(), terminate: false }
        }
    }

    impl Host for FakeHost {
        fn query(&mut self, sql: &str) -> QueryOutcome {
            self.queries.push(sql.to_string());
            if self.terminate {
                QueryOutcome::Terminated
            } else {
                QueryOutcome::Rows(self.rows.clone())
            }
        }
    }

    fn run_with(host: &mut FakeHost, src: &str) -> Result<String, PhpError> {
        let prog = parse_program(src).unwrap();
        let mut interp = Interp::new(host);
        interp.set_get_param("id", "7");
        interp.set_get_param("name", "alice");
        interp.run(&prog)?;
        Ok(interp.output().to_string())
    }

    #[test]
    fn concat_query_construction() {
        let mut host = FakeHost::new();
        run_with(
            &mut host,
            r#"$id = $_GET['id'];
               $q = "SELECT * FROM records WHERE ID=" . $id . " LIMIT 5";
               mysql_query($q);"#,
        )
        .unwrap();
        assert_eq!(host.queries, ["SELECT * FROM records WHERE ID=7 LIMIT 5"]);
    }

    #[test]
    fn interpolated_query_construction() {
        let mut host = FakeHost::new();
        run_with(
            &mut host,
            r#"$id = $_GET['id'];
               mysql_query("SELECT * FROM t WHERE id=$id");"#,
        )
        .unwrap();
        assert_eq!(host.queries, ["SELECT * FROM t WHERE id=7"]);
    }

    #[test]
    fn if_else_and_comparison() {
        let mut host = FakeHost::new();
        let out = run_with(
            &mut host,
            r#"$x = 5;
               if ($x > 3) { echo "big"; } else { echo "small"; }"#,
        )
        .unwrap();
        assert_eq!(out, "big");
    }

    #[test]
    fn while_fetch_loop() {
        let mut host = FakeHost::new();
        host.rows = vec![
            vec![("id".into(), "1".into()), ("name".into(), "a".into())],
            vec![("id".into(), "2".into()), ("name".into(), "b".into())],
        ];
        let out = run_with(
            &mut host,
            r#"$r = mysql_query("SELECT id, name FROM t");
               while ($row = mysql_fetch_assoc($r)) {
                   echo $row['name'], ";";
               }"#,
        )
        .unwrap();
        assert_eq!(out, "a;b;");
    }

    #[test]
    fn foreach_and_arrays() {
        let mut host = FakeHost::new();
        let out = run_with(
            &mut host,
            r#"$items = array('x' => 1, 'y' => 2);
               foreach ($items as $k => $v) { echo $k, "=", $v, " "; }"#,
        )
        .unwrap();
        assert_eq!(out, "x=1 y=2 ");
    }

    #[test]
    fn termination_aborts_script() {
        let mut host = FakeHost::new();
        host.terminate = true;
        let err =
            run_with(&mut host, r#"mysql_query("SELECT 1"); echo "never reached";"#).unwrap_err();
        assert_eq!(err, PhpError::Terminated);
    }

    #[test]
    fn exit_stops_execution() {
        let mut host = FakeHost::new();
        let out = run_with(&mut host, r#"echo "a"; exit; echo "b";"#).unwrap();
        assert_eq!(out, "a");
    }

    #[test]
    fn die_with_message() {
        let mut host = FakeHost::new();
        let out = run_with(&mut host, r#"die('fatal');"#).unwrap();
        assert_eq!(out, "fatal");
    }

    #[test]
    fn nested_array_assignment() {
        let mut host = FakeHost::new();
        let out = run_with(&mut host, r#"$a['x']['y'] = 5; echo $a['x']['y'];"#).unwrap();
        assert_eq!(out, "5");
    }

    #[test]
    fn isset_and_ternary_default() {
        let mut host = FakeHost::new();
        let out = run_with(
            &mut host,
            r#"$v = isset($_GET['missing']) ? $_GET['missing'] : 'dflt'; echo $v;"#,
        )
        .unwrap();
        assert_eq!(out, "dflt");
    }

    #[test]
    fn loose_comparison_juggling() {
        let mut host = FakeHost::new();
        let out =
            run_with(&mut host, r#"if ('1' == 1) { echo "y"; } if ('1' === 1) { echo "n"; }"#)
                .unwrap();
        assert_eq!(out, "y");
    }

    #[test]
    fn string_index_read() {
        let mut host = FakeHost::new();
        let out = run_with(&mut host, r#"$s = 'abc'; echo $s[1];"#).unwrap();
        assert_eq!(out, "b");
    }

    #[test]
    fn undefined_variable_is_null() {
        let mut host = FakeHost::new();
        let out = run_with(&mut host, r#"echo "[", $nope, "]";"#).unwrap();
        assert_eq!(out, "[]");
    }

    #[test]
    fn break_and_continue() {
        let mut host = FakeHost::new();
        let out = run_with(
            &mut host,
            r#"$i = 0;
               while ($i < 10) {
                   $i += 1;
                   if ($i == 2) { continue; }
                   if ($i == 4) { break; }
                   echo $i;
               }"#,
        )
        .unwrap();
        assert_eq!(out, "13");
    }

    #[test]
    fn compound_concat_assign() {
        let mut host = FakeHost::new();
        let out = run_with(&mut host, r#"$q = "SELECT"; $q .= " 1"; echo $q;"#).unwrap();
        assert_eq!(out, "SELECT 1");
    }
}
