//! AST for the PHP subset.

use crate::value::PValue;

/// A program is a statement list.
pub type Program = Vec<Stmt>;

/// A PHP statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A bare expression statement (`foo($x);`).
    Expr(Expr),
    /// `$var = expr;`, `$var .= expr;`, `$var += expr;`
    Assign {
        /// Target variable name (no `$`).
        var: String,
        /// Optional index chain for `$a['k'] = v` / `$a[] = v`.
        indices: Vec<Option<Expr>>,
        /// Compound op (`None` for plain `=`).
        op: Option<AssignOp>,
        /// Right-hand side.
        expr: Expr,
    },
    /// `if (…) { … } elseif (…) { … } else { … }` — elseif chains are
    /// desugared into nested `If`s in the else branch.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch body.
        then_branch: Vec<Stmt>,
        /// Else-branch body (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (…) { … }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `foreach ($arr as $v)` / `foreach ($arr as $k => $v)`
    Foreach {
        /// The iterated expression.
        array: Expr,
        /// Key variable, if the `$k =>` form is used.
        key_var: Option<String>,
        /// Value variable.
        val_var: String,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `echo expr, expr;`
    Echo(Vec<Expr>),
    /// `return expr;` — ends the script (top-level return).
    Return(Option<Expr>),
    /// `exit;` / `die('msg');`
    Exit(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// Compound assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `.=`
    Concat,
    /// `+=`
    Add,
    /// `-=`
    Sub,
}

/// A PHP expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(PValue),
    /// `$name`.
    Var(String),
    /// A double-quoted string with interpolation, desugared into a list of
    /// pieces concatenated at runtime.
    Interp(Vec<InterpPart>),
    /// `expr[index]` (array read).
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// `name(args…)` — all callables are built-ins in this subset.
    Call {
        /// Function name (case-insensitive at dispatch).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `cond ? a : b` (also the `?:` short form with `a` omitted).
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Then-value (`None` for `?:`).
        then_val: Option<Box<Expr>>,
        /// Else-value.
        else_val: Box<Expr>,
    },
    /// `array(…)` / `[…]` literal with optional `key => value` pairs.
    ArrayLit(Vec<(Option<Expr>, Expr)>),
    /// `isset($var…)`.
    Isset(Vec<Expr>),
    /// `empty(expr)`.
    Empty(Box<Expr>),
    /// An assignment used as an expression, e.g. the idiomatic
    /// `while ($row = mysql_fetch_assoc($r))`. Evaluates to the assigned
    /// value.
    AssignExpr {
        /// Target variable.
        var: String,
        /// Right-hand side.
        expr: Box<Expr>,
    },
}

/// One piece of an interpolated string.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpPart {
    /// A literal run.
    Lit(String),
    /// An interpolated variable.
    Var(String),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `!`
    Not,
    /// `-`
    Neg,
    /// `@` (error-suppression; a no-op here).
    Silence,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `.`
    Concat,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==` (loose).
    Eq,
    /// `!=` / `<>` (loose).
    NotEq,
    /// `===`.
    Identical,
    /// `!==`.
    NotIdentical,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `&&` / `and`
    And,
    /// `||` / `or`
    Or,
}
