//! Byte spans into PHP source text.
//!
//! The lexer records a span per token and the parser aggregates them into
//! a span per statement (in statement *preorder*, the same order
//! [`crate::visit`] walks), so downstream consumers — chiefly the static
//! taint analyzer — can point findings back at source text.

/// A half-open byte range `[lo, hi)` into the original source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub lo: usize,
    /// End byte offset (exclusive).
    pub hi: usize,
}

impl Span {
    /// Builds a span from byte offsets.
    pub fn new(lo: usize, hi: usize) -> Self {
        Span { lo, hi }
    }

    /// The source text this span covers (clamped to the string bounds).
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        let lo = self.lo.min(src.len());
        let hi = self.hi.clamp(lo, src.len());
        &src[lo..hi]
    }

    /// 1-based line number of the span start.
    pub fn line(&self, src: &str) -> usize {
        src.as_bytes()[..self.lo.min(src.len())].iter().filter(|&&b| b == b'\n').count() + 1
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_line() {
        let src = "ab\ncd\nef";
        let s = Span::new(3, 5);
        assert_eq!(s.slice(src), "cd");
        assert_eq!(s.line(src), 2);
        assert_eq!(Span::new(0, 2).line(src), 1);
        assert_eq!(Span::new(6, 8).line(src), 3);
        // Out-of-range spans clamp instead of panicking.
        assert_eq!(Span::new(7, 99).slice(src), "f");
    }
}
