//! Bytecode VM: executes a compiled [`Chunk`] against a [`Host`].
//!
//! The VM is the serving engine; the tree-walking
//! [`crate::interp::Interp`] remains intact as the differential oracle.
//! Observable behaviour — echoed output, the queries the host receives
//! (text and order), `mysql_error()` state, and the
//! [`PhpError::Terminated`]/[`PhpError::Runtime`] error surface — is
//! bit-identical by construction: both engines share the builtin table
//! ([`crate::builtins`]), the type-juggling and assignment helpers, and
//! the superglobal population code, and differ only in how they walk the
//! program. The differential suites (full-corpus replay plus the
//! random-program proptest) pin the equivalence.
//!
//! Unlike the tree-walker, each [`Vm::run`] starts from fresh variables
//! (superglobals only): a chunk's variable slots belong to that chunk.
//! Output accumulates across runs, mirroring [`Interp::output`]
//! (one request per engine instance in the serving path either way).
//!
//! [`Interp::output`]: crate::interp::Interp::output

use crate::ast::AssignOp;
use crate::builtins;
use crate::compile::{Chunk, InterpSeg, Op, SUPERGLOBALS};
use crate::interp::{
    apply_assign_op, assign_into, eval_binop, index_read, isset_index, set_superglobal_entry, Host,
    PhpError, Runtime,
};
use crate::value::{PArray, PKey, PValue};

/// Iteration ceiling shared with the tree-walker's `while` guard.
const LOOP_GUARD_LIMIT: u64 = 1_000_000;

/// The bytecode virtual machine.
pub struct Vm<'h> {
    rt: Runtime<'h>,
    superglobals: [PArray; 5],
    output: String,
}

impl<'h> std::fmt::Debug for Vm<'h> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm").field("output_len", &self.output.len()).finish_non_exhaustive()
    }
}

impl<'h> Vm<'h> {
    /// Creates a VM bound to `host` with empty superglobals.
    pub fn new(host: &'h mut dyn Host) -> Self {
        Vm { rt: Runtime::new(host), superglobals: Default::default(), output: String::new() }
    }

    /// Sets a `$_GET` parameter (also mirrored into `$_REQUEST`).
    pub fn set_get_param(&mut self, key: &str, value: &str) {
        set_superglobal_entry(&mut self.superglobals[0], key, value);
        set_superglobal_entry(&mut self.superglobals[3], key, value);
    }

    /// Sets a `$_POST` parameter (also mirrored into `$_REQUEST`).
    pub fn set_post_param(&mut self, key: &str, value: &str) {
        set_superglobal_entry(&mut self.superglobals[1], key, value);
        set_superglobal_entry(&mut self.superglobals[3], key, value);
    }

    /// Sets a `$_COOKIE` value.
    pub fn set_cookie(&mut self, key: &str, value: &str) {
        set_superglobal_entry(&mut self.superglobals[2], key, value);
    }

    /// Sets a `$_SERVER` entry (e.g. `HTTP_USER_AGENT`, `REMOTE_ADDR`).
    pub fn set_server_var(&mut self, key: &str, value: &str) {
        set_superglobal_entry(&mut self.superglobals[4], key, value);
    }

    /// Everything the script `echo`ed so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Executes a chunk to completion.
    ///
    /// # Errors
    ///
    /// [`PhpError::Terminated`] if the host killed the request;
    /// [`PhpError::Runtime`] on genuine script errors. Output produced
    /// before the error is retained, as in the tree-walker.
    pub fn run(&mut self, chunk: &Chunk) -> Result<(), PhpError> {
        debug_assert_eq!(&chunk.vars[..SUPERGLOBALS.len().min(chunk.vars.len())], SUPERGLOBALS);
        let mut slots: Vec<PValue> = Vec::with_capacity(chunk.vars.len());
        for sg in &self.superglobals {
            slots.push(PValue::Array(sg.clone()));
        }
        slots.resize(chunk.vars.len(), PValue::Null);
        let mut stack: Vec<PValue> = Vec::with_capacity(16);
        let mut guards = vec![0u64; chunk.guards as usize];
        let mut iters: Vec<std::vec::IntoIter<(PKey, PValue)>> = Vec::new();
        let mut pc = 0usize;

        macro_rules! pop {
            () => {
                stack.pop().expect("compiler guarantees stack discipline")
            };
        }

        while let Some(op) = chunk.ops.get(pc) {
            pc += 1;
            match op {
                Op::Const(i) => stack.push(chunk.consts[*i as usize].clone()),
                Op::Load(s) => stack.push(slots[*s as usize].clone()),
                Op::Store(s) => slots[*s as usize] = pop!(),
                Op::StoreOp(s, aop) => {
                    let rhs = pop!();
                    let slot = &mut slots[*s as usize];
                    *slot = apply_assign_op(*aop, slot, &rhs);
                }
                Op::StoreIndex { slot, path, op } => {
                    let path = &chunk.index_paths[*path as usize];
                    let mut keys: Vec<Option<PKey>> = vec![None; path.len()];
                    for (j, has_key) in path.iter().enumerate().rev() {
                        if *has_key {
                            keys[j] = Some(PKey::from_value(&pop!()));
                        }
                    }
                    let rhs = pop!();
                    assign_into(&mut slots[*slot as usize], &keys, *op, rhs)?;
                }
                Op::Dup => {
                    let v = stack.last().expect("dup on empty stack").clone();
                    stack.push(v);
                }
                Op::Pop => {
                    pop!();
                }
                Op::Jump(t) => pc = *t as usize,
                Op::JumpIfFalse(t) => {
                    if !pop!().to_php_bool() {
                        pc = *t as usize;
                    }
                }
                Op::JumpIfTrue(t) => {
                    if pop!().to_php_bool() {
                        pc = *t as usize;
                    }
                }
                Op::ToBool => {
                    let v = pop!();
                    stack.push(PValue::Bool(v.to_php_bool()));
                }
                Op::Not => {
                    let v = pop!();
                    stack.push(PValue::Bool(!v.to_php_bool()));
                }
                Op::Neg => {
                    let v = pop!();
                    stack.push(match v {
                        PValue::Int(i) => PValue::Int(-i),
                        other => PValue::Float(-other.to_php_float()),
                    });
                }
                Op::Bin(bop) => {
                    let r = pop!();
                    let l = pop!();
                    stack.push(eval_binop(*bop, &l, &r));
                }
                Op::Concat(n) => {
                    let at = stack.len() - *n as usize;
                    let mut s = String::new();
                    for p in &stack[at..] {
                        p.append_php_string(&mut s);
                    }
                    stack.truncate(at);
                    stack.push(PValue::Str(s));
                }
                Op::Index => {
                    let i = pop!();
                    let b = pop!();
                    stack.push(index_read(&b, &i));
                }
                Op::LoadIndex(s) => {
                    let i = pop!();
                    stack.push(index_read(&slots[*s as usize], &i));
                }
                Op::Interp(i) => {
                    let mut s = String::new();
                    for seg in &chunk.interps[*i as usize] {
                        match seg {
                            InterpSeg::Lit(l) => s.push_str(l),
                            InterpSeg::Var(slot) => {
                                slots[*slot as usize].append_php_string(&mut s);
                            }
                        }
                    }
                    stack.push(PValue::Str(s));
                }
                Op::Call { name, argc } => {
                    let args = stack.split_off(stack.len() - *argc as usize);
                    let nm = &chunk.names[*name as usize];
                    let v =
                        builtins::dispatch_builtin(&mut self.rt, &nm.lower, &nm.original, args)?;
                    stack.push(v);
                }
                Op::HostQuery => {
                    let sql = pop!().to_php_string();
                    let v = builtins::host_query(&mut self.rt, &sql)?;
                    stack.push(v);
                }
                Op::HostQueryPrepared => {
                    let args = pop!();
                    let sql = pop!().to_php_string();
                    let (text, bindings) = builtins::db_query_expand(sql, &args);
                    let v = builtins::host_query_prepared(&mut self.rt, &text, &bindings)?;
                    stack.push(v);
                }
                Op::Echo => {
                    let v = pop!();
                    v.append_php_string(&mut self.output);
                }
                Op::EchoN(n) => {
                    let at = stack.len() - *n as usize;
                    for p in &stack[at..] {
                        p.append_php_string(&mut self.output);
                    }
                    stack.truncate(at);
                }
                Op::StoreTruthy(s) => {
                    let v = pop!();
                    let truthy = v.to_php_bool();
                    slots[*s as usize] = v;
                    stack.push(PValue::Bool(truthy));
                }
                Op::AppendSlot(s) => {
                    let rhs = pop!();
                    let slot = &mut slots[*s as usize];
                    if let PValue::Str(acc) = slot {
                        rhs.append_php_string(acc);
                    } else {
                        *slot = apply_assign_op(AssignOp::Concat, slot, &rhs);
                    }
                }
                Op::ExitMsg => {
                    if let PValue::Str(s) = pop!() {
                        self.output.push_str(&s);
                    }
                }
                Op::Halt => return Ok(()),
                Op::NewArray => stack.push(PValue::Array(PArray::new())),
                Op::ArrayPush => {
                    let v = pop!();
                    if let Some(PValue::Array(a)) = stack.last_mut() {
                        a.push(v);
                    }
                }
                Op::ArrayInsert => {
                    let k = pop!();
                    let v = pop!();
                    if let Some(PValue::Array(a)) = stack.last_mut() {
                        a.set(PKey::from_value(&k), v);
                    }
                }
                Op::IssetSlot(s) => {
                    stack.push(PValue::Bool(!matches!(slots[*s as usize], PValue::Null)));
                }
                Op::IssetIndex => {
                    let i = pop!();
                    let b = pop!();
                    stack.push(PValue::Bool(isset_index(&b, &i)));
                }
                Op::GuardReset(g) => guards[*g as usize] = 0,
                Op::GuardTick(g) => {
                    let c = &mut guards[*g as usize];
                    *c += 1;
                    if *c > LOOP_GUARD_LIMIT {
                        return Err(PhpError::Runtime("loop iteration limit exceeded".into()));
                    }
                }
                Op::IterNew => {
                    let items: Vec<(PKey, PValue)> = match pop!() {
                        PValue::Array(a) => a.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
                        _ => Vec::new(), // foreach over non-array: skip body
                    };
                    iters.push(items.into_iter());
                }
                Op::IterNext { key, val, end } => {
                    let it = iters.last_mut().expect("iterator stack underflow");
                    match it.next() {
                        Some((k, v)) => {
                            if let Some(ks) = key {
                                slots[*ks as usize] = match k {
                                    PKey::Int(i) => PValue::Int(i),
                                    PKey::Str(s) => PValue::Str(s),
                                };
                            }
                            slots[*val as usize] = v;
                        }
                        None => {
                            iters.pop();
                            pc = *end as usize;
                        }
                    }
                }
                Op::IterPop => {
                    iters.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::interp::{Interp, QueryOutcome};
    use crate::parser::parse_program;

    /// A host that records queries and returns canned rows.
    struct FakeHost {
        queries: Vec<String>,
        rows: Vec<Vec<(String, String)>>,
        terminate: bool,
    }

    impl FakeHost {
        fn new() -> Self {
            FakeHost { queries: Vec::new(), rows: Vec::new(), terminate: false }
        }
    }

    impl Host for FakeHost {
        fn query(&mut self, sql: &str) -> QueryOutcome {
            self.queries.push(sql.to_string());
            if self.terminate {
                QueryOutcome::Terminated
            } else {
                QueryOutcome::Rows(self.rows.clone())
            }
        }
    }

    /// Runs `src` under both engines with identical inputs and asserts
    /// identical output, query streams, and error results; returns the
    /// VM's observation.
    fn diff_both(src: &str, rows: Vec<Vec<(String, String)>>) -> (String, Vec<String>) {
        let prog = parse_program(src).expect("valid program");
        let chunk = compile(&prog);

        let mut tw_host = FakeHost::new();
        tw_host.rows = rows.clone();
        let mut interp = Interp::new(&mut tw_host);
        interp.set_get_param("id", "7");
        interp.set_get_param("name", "alice");
        let tw_result = interp.run(&prog);
        let tw_out = interp.output().to_string();
        drop(interp);

        let mut vm_host = FakeHost::new();
        vm_host.rows = rows;
        let mut vm = Vm::new(&mut vm_host);
        vm.set_get_param("id", "7");
        vm.set_get_param("name", "alice");
        let vm_result = vm.run(&chunk);
        let vm_out = vm.output().to_string();
        drop(vm);

        assert_eq!(vm_result, tw_result, "engine results diverge on {src:?}");
        assert_eq!(vm_out, tw_out, "engine output diverges on {src:?}");
        assert_eq!(vm_host.queries, tw_host.queries, "query streams diverge on {src:?}");
        (vm_out, vm_host.queries)
    }

    #[test]
    fn query_construction_matches_tree_walk() {
        let (_, queries) = diff_both(
            r#"$id = $_GET['id'];
               $q = "SELECT * FROM records WHERE ID=" . $id . " LIMIT 5";
               mysql_query($q);"#,
            vec![],
        );
        assert_eq!(queries, ["SELECT * FROM records WHERE ID=7 LIMIT 5"]);
    }

    #[test]
    fn fetch_loop_matches() {
        let (out, _) = diff_both(
            r#"$r = mysql_query("SELECT id, name FROM t");
               while ($row = mysql_fetch_assoc($r)) {
                   echo $row['name'], ";";
               }"#,
            vec![
                vec![("id".into(), "1".into()), ("name".into(), "a".into())],
                vec![("id".into(), "2".into()), ("name".into(), "b".into())],
            ],
        );
        assert_eq!(out, "a;b;");
    }

    #[test]
    fn control_flow_matrix_matches() {
        for src in [
            r#"$i = 0; while ($i < 10) { $i += 1; if ($i == 2) { continue; } if ($i == 4) { break; } echo $i; }"#,
            r#"foreach (array('x' => 1, 'y' => 2) as $k => $v) { echo $k, "=", $v, " "; }"#,
            r#"echo isset($_GET['missing']) ? $_GET['missing'] : 'dflt';"#,
            r#"echo $_GET['id'] ?: 'fallback';"#,
            r#"echo "a"; exit; echo "b";"#,
            r#"die('fatal');"#,
            r#"break; echo "unreachable";"#,
            r#"$a['x']['y'] = 5; echo $a['x']['y'];"#,
            r#"$s = 'abc'; echo $s[1], $s[99];"#,
            r#"echo "[", $nope, "]";"#,
            r#"if ('1' == 1) { echo "y"; } if ('1' === 1) { echo "n"; }"#,
            r#"$q = "SELECT"; $q .= " 1"; echo $q;"#,
            r#"echo 2 + 3 * 4, " ", 10 / 4, " ", 10 % 3, " ", -$_GET['id'];"#,
            r#"echo (1 && "x"), (0 || 3), (1 and 0);"#,
            r#"echo strtoupper(trim("  ok  ")), strlen("abc");"#,
        ] {
            diff_both(src, vec![]);
        }
    }

    #[test]
    fn termination_matches() {
        let prog = parse_program(r#"mysql_query("SELECT 1"); echo "never";"#).unwrap();
        let chunk = compile(&prog);
        let mut host = FakeHost::new();
        host.terminate = true;
        let mut vm = Vm::new(&mut host);
        let err = vm.run(&chunk).unwrap_err();
        assert_eq!(err, PhpError::Terminated);
        assert_eq!(vm.output(), "");
    }

    #[test]
    fn undefined_function_error_matches_spelling() {
        let prog = parse_program("Totally_Unknown();").unwrap();
        let chunk = compile(&prog);
        let mut host = FakeHost::new();
        let mut vm = Vm::new(&mut host);
        let err = vm.run(&chunk).unwrap_err();
        assert_eq!(err, PhpError::Runtime("call to undefined function Totally_Unknown()".into()));
    }

    #[test]
    fn loop_guard_fires_like_tree_walk() {
        diff_both(r#"$i = 0; while (1) { $i += 1; if ($i > 3) { break; } }"#, vec![]);
        let prog = parse_program("while (1) { $x = 1; }").unwrap();
        let chunk = compile(&prog);
        let mut host = FakeHost::new();
        let mut vm = Vm::new(&mut host);
        assert_eq!(
            vm.run(&chunk).unwrap_err(),
            PhpError::Runtime("loop iteration limit exceeded".into())
        );
    }
}
