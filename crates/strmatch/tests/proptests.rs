//! Property-based tests for the string matching substrate.

use joza_strmatch::ahocorasick::AhoCorasick;
use joza_strmatch::levenshtein::{bounded_distance, distance};
use joza_strmatch::mru::{MruScanner, NaiveScanner};
use joza_strmatch::myers::{bounded_myers_substring_distance, myers_substring_distance};
use joza_strmatch::normalize::{to_lower, to_lower_into};
use joza_strmatch::qgram;
use joza_strmatch::sellers::{naive_substring_distance, substring_distance};
use joza_strmatch::swar;
use proptest::prelude::*;

/// Arbitrary byte strings, explicitly including non-ASCII and interior
/// NULs — the SWAR kernels must be differentially exact on *all* bytes,
/// not just the printable SQL subset.
fn any_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..96)
}

proptest! {
    #[test]
    fn distance_symmetric(a in ".{0,40}", b in ".{0,40}") {
        prop_assert_eq!(distance(a.as_bytes(), b.as_bytes()), distance(b.as_bytes(), a.as_bytes()));
    }

    #[test]
    fn distance_triangle_inequality(a in ".{0,25}", b in ".{0,25}", c in ".{0,25}") {
        let ab = distance(a.as_bytes(), b.as_bytes());
        let bc = distance(b.as_bytes(), c.as_bytes());
        let ac = distance(a.as_bytes(), c.as_bytes());
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn distance_zero_iff_equal(a in ".{0,30}", b in ".{0,30}") {
        let d = distance(a.as_bytes(), b.as_bytes());
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn distance_bounded_by_max_len(a in ".{0,30}", b in ".{0,30}") {
        let d = distance(a.as_bytes(), b.as_bytes());
        prop_assert!(d <= a.len().max(b.len()));
        prop_assert!(d >= a.len().abs_diff(b.len()));
    }

    #[test]
    fn bounded_agrees_with_full(a in ".{0,25}", b in ".{0,25}", cutoff in 0usize..12) {
        let d = distance(a.as_bytes(), b.as_bytes());
        match bounded_distance(a.as_bytes(), b.as_bytes(), cutoff) {
            Some(bd) => { prop_assert_eq!(bd, d); prop_assert!(d <= cutoff); }
            None => prop_assert!(d > cutoff),
        }
    }

    #[test]
    fn sellers_never_exceeds_global(p in ".{0,25}", t in ".{0,40}") {
        let m = substring_distance(p.as_bytes(), t.as_bytes());
        prop_assert!(m.distance <= distance(p.as_bytes(), t.as_bytes()));
    }

    #[test]
    fn sellers_span_distance_is_exact(p in ".{1,20}", t in ".{1,40}") {
        let m = substring_distance(p.as_bytes(), t.as_bytes());
        prop_assert!(m.end <= t.len());
        prop_assert!(m.start <= m.end);
        // The reported distance must equal the Levenshtein distance of the
        // pattern against the reported span.
        let span = &t.as_bytes()[m.start..m.end];
        prop_assert_eq!(distance(p.as_bytes(), span), m.distance);
    }

    #[test]
    fn sellers_detects_exact_containment(prefix in ".{0,15}", p in ".{1,15}", suffix in ".{0,15}") {
        let t = format!("{prefix}{p}{suffix}");
        let m = substring_distance(p.as_bytes(), t.as_bytes());
        prop_assert_eq!(m.distance, 0);
    }

    /// The O(n·m) Sellers algorithm finds the same minimal distance as
    /// the paper's naive O(n²·m²) every-substring baseline.
    #[test]
    fn sellers_agrees_with_naive_baseline(p in ".{0,12}", t in ".{0,24}") {
        let fast = substring_distance(p.as_bytes(), t.as_bytes());
        let slow = naive_substring_distance(p.as_bytes(), t.as_bytes());
        prop_assert_eq!(fast.distance, slow.distance, "fast {:?} vs slow {:?}", fast, slow);
    }

    /// The bit-parallel kernel is a drop-in for Sellers: identical
    /// distance, start, and end on arbitrary byte strings.
    #[test]
    fn myers_matches_classic(p in ".{0,30}", t in ".{0,60}") {
        let classic = substring_distance(p.as_bytes(), t.as_bytes());
        let fast = myers_substring_distance(p.as_bytes(), t.as_bytes());
        prop_assert_eq!(fast, classic);
    }

    /// Same, on a tiny alphabet: equal-distance ties are everywhere, so
    /// the span tie-break (min ratio, then leftmost) is exercised hard.
    #[test]
    fn myers_matches_classic_on_dense_ties(p in "[ab]{1,20}", t in "[ab]{0,60}") {
        let classic = substring_distance(p.as_bytes(), t.as_bytes());
        let fast = myers_substring_distance(p.as_bytes(), t.as_bytes());
        prop_assert_eq!(fast, classic);
    }

    /// Multi-word patterns (> 64 bytes, up to three blocks) agree too.
    #[test]
    fn myers_matches_classic_multiword(p in "[a-d]{60,150}", t in "[a-d]{0,200}") {
        let classic = substring_distance(p.as_bytes(), t.as_bytes());
        let fast = myers_substring_distance(p.as_bytes(), t.as_bytes());
        prop_assert_eq!(fast, classic);
    }

    /// An embedded noisy copy of the pattern forces a real match window;
    /// the recovered span must still be bit-identical.
    #[test]
    fn myers_matches_classic_on_embedded_payload(
        p in "[a-z '=0-9]{5,80}",
        prefix in "[a-z ]{0,60}",
        suffix in "[a-z ]{0,60}",
        flip in 0usize..80,
    ) {
        let mut noisy = p.clone().into_bytes();
        let i = flip % noisy.len();
        noisy[i] = if noisy[i] == b'x' { b'y' } else { b'x' };
        let t = [prefix.as_bytes(), &noisy, suffix.as_bytes()].concat();
        let classic = substring_distance(p.as_bytes(), &t);
        let fast = myers_substring_distance(p.as_bytes(), &t);
        prop_assert_eq!(fast, classic);
    }

    /// The threshold-aware kernel: `Some` iff the true distance is ≤ k,
    /// and when `Some` the match is the exact classic result.
    #[test]
    fn bounded_myers_agrees_with_classic(p in ".{0,40}", t in ".{0,80}", k in 0usize..20) {
        let classic = substring_distance(p.as_bytes(), t.as_bytes());
        match bounded_myers_substring_distance(p.as_bytes(), t.as_bytes(), k) {
            Some(m) => {
                prop_assert_eq!(m, classic);
                prop_assert!(m.distance <= k);
            }
            None => prop_assert!(classic.distance > k, "classic {:?} within k {}", classic, k),
        }
    }

    #[test]
    fn qgram_bound_is_sound(p in ".{0,30}", t in ".{0,50}", q in 2usize..5) {
        let lb = qgram::lower_bound(p.as_bytes(), t.as_bytes(), q);
        let real = substring_distance(p.as_bytes(), t.as_bytes()).distance;
        prop_assert!(lb <= real, "lb {} > real {}", lb, real);
    }

    #[test]
    fn scanners_agree(
        pats in proptest::collection::vec("[a-c]{1,4}", 1..6),
        hay in "[a-c]{0,40}",
    ) {
        let ac = AhoCorasick::new(&pats);
        let naive = NaiveScanner::new(&pats);
        let mut mru = MruScanner::new(&pats);
        let mut a = ac.find_all(hay.as_bytes());
        let mut n = naive.find_all(hay.as_bytes());
        let mut m = mru.find_all(hay.as_bytes());
        let key = |x: &joza_strmatch::Match| (x.pattern, x.start, x.end);
        a.sort_unstable_by_key(key);
        n.sort_unstable_by_key(key);
        m.sort_unstable_by_key(key);
        prop_assert_eq!(&a, &n);
        prop_assert_eq!(&a, &m);
    }

    /// SWAR lowercase folding is byte-for-byte identical to the scalar
    /// reference on arbitrary byte strings (including non-ASCII).
    #[test]
    fn swar_fold_matches_scalar(bytes in any_bytes()) {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        swar::fold_lower_into(&bytes, &mut fast);
        swar::fold_lower_into_scalar(&bytes, &mut slow);
        prop_assert_eq!(&fast, &slow);
        // And both agree with the plain std byte map.
        let std_ref: Vec<u8> = bytes.iter().map(|b| b.to_ascii_lowercase()).collect();
        prop_assert_eq!(&fast, &std_ref);
    }

    /// `to_lower` (the Cow front-end over the SWAR kernel) agrees with the
    /// std byte map, borrows exactly when no byte changes, and
    /// `to_lower_into` produces the same bytes.
    #[test]
    fn to_lower_matches_reference(bytes in any_bytes()) {
        let std_ref: Vec<u8> = bytes.iter().map(|b| b.to_ascii_lowercase()).collect();
        let cow = to_lower(&bytes);
        prop_assert_eq!(cow.as_ref(), std_ref.as_slice());
        prop_assert_eq!(
            matches!(cow, std::borrow::Cow::Borrowed(_)),
            bytes == std_ref,
            "must borrow iff no byte needs rewriting"
        );
        let mut into = Vec::new();
        to_lower_into(&bytes, &mut into);
        prop_assert_eq!(into.as_slice(), std_ref.as_slice());
    }

    /// The word-parallel identifier scan stops exactly where the scalar
    /// classifier does, from every starting offset.
    #[test]
    fn swar_scan_ident_matches_scalar(bytes in any_bytes(), from in 0usize..100) {
        let from = from.min(bytes.len());
        prop_assert_eq!(swar::scan_ident(&bytes, from), swar::scan_ident_scalar(&bytes, from));
    }

    /// Every SWAR classifier scan agrees with a per-byte reference scan of
    /// the same predicate, from an arbitrary offset.
    #[test]
    fn swar_classifier_scans_match_reference(bytes in any_bytes(), from in 0usize..100) {
        let from = from.min(bytes.len());
        let reference = |pred: &dyn Fn(u8) -> bool| {
            let mut i = from;
            while i < bytes.len() && pred(bytes[i]) {
                i += 1;
            }
            i
        };
        prop_assert_eq!(swar::scan_ws(&bytes, from), reference(&|b| b.is_ascii_whitespace()));
        prop_assert_eq!(swar::scan_digits(&bytes, from), reference(&|b| b.is_ascii_digit()));
        prop_assert_eq!(swar::scan_hex(&bytes, from), reference(&|b| b.is_ascii_hexdigit()));
        prop_assert_eq!(swar::scan_ident(&bytes, from), reference(&|b| swar::is_ident_byte(b)));
    }

    /// Needle searches land on the first occurrence at-or-after `from`, or
    /// `len` when absent — same as a linear scan.
    #[test]
    fn swar_find_byte_matches_reference(
        bytes in any_bytes(),
        from in 0usize..100,
        b1 in any::<u8>(),
        b2 in any::<u8>(),
    ) {
        let from = from.min(bytes.len());
        let linear = |pred: &dyn Fn(u8) -> bool| {
            (from..bytes.len()).find(|&i| pred(bytes[i])).unwrap_or(bytes.len())
        };
        prop_assert_eq!(swar::find_byte(&bytes, from, b1), linear(&|b| b == b1));
        prop_assert_eq!(swar::find_byte2(&bytes, from, b1, b2), linear(&|b| b == b1 || b == b2));
    }

    /// `first_ascii_upper` finds the first `A..=Z` byte exactly; bytes
    /// ≥ 0x80 (UTF-8 continuation bytes and friends) never trigger it.
    #[test]
    fn swar_first_upper_matches_reference(bytes in any_bytes()) {
        let expect = bytes.iter().position(|b| b.is_ascii_uppercase());
        prop_assert_eq!(swar::first_ascii_upper(&bytes), expect);
    }

    #[test]
    fn mru_stable_across_repeats(
        pats in proptest::collection::vec("[a-b]{1,3}", 1..5),
        hay in "[a-b]{0,30}",
    ) {
        let mut mru = MruScanner::new(&pats);
        let first = mru.find_all(hay.as_bytes());
        let second = mru.find_all(hay.as_bytes());
        prop_assert_eq!(first, second);
    }
}
