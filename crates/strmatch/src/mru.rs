//! Naive multi-pattern scanning with most-recently-used reordering.
//!
//! The paper's first PTI optimization (§VI-A) is "a most-recently-used
//! caching policy for fragments that match a query to take advantage of the
//! SQL query working set of a Web application". This module implements both
//! the unoptimized scanner (try every fragment in insertion order) and the
//! MRU variant (recently matched fragments float to the front), so Figure 7
//! can be regenerated as an ablation.

/// A pattern occurrence reported by the scanners (same shape as
/// [`crate::ahocorasick::Match`]).
pub use crate::ahocorasick::Match;

/// A naive scanner that checks each pattern against the haystack in order.
///
/// `find_all` is `O(patterns · |haystack| · avg_len)` — the cost profile the
/// paper calls "computationally expensive" for PTI before optimization.
#[derive(Debug, Clone)]
pub struct NaiveScanner {
    patterns: Vec<Vec<u8>>,
}

impl NaiveScanner {
    /// Builds a scanner over the given patterns.
    pub fn new<I, P>(patterns: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        NaiveScanner { patterns: patterns.into_iter().map(|p| p.as_ref().to_vec()).collect() }
    }

    /// Number of patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Finds all occurrences of all patterns.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        for (pi, pat) in self.patterns.iter().enumerate() {
            find_one(pi, pat, haystack, &mut out);
        }
        out.sort_unstable_by_key(|m| (m.end, m.start, m.pattern));
        out
    }
}

/// A scanner that keeps patterns in most-recently-matched order.
///
/// Matching is identical to [`NaiveScanner`] but patterns that matched the
/// previous query are tried first, and scanning for a *coverage* query (does
/// fragment X cover token span Y) can stop early. The win materializes in
/// [`find_all_until`](MruScanner::find_all_until), which stops as soon as the supplied predicate says
/// the caller has seen enough — mirroring the daemon's "benign queries are
/// quickly matched" behaviour.
#[derive(Debug, Clone)]
pub struct MruScanner {
    /// (original pattern id, bytes), maintained in MRU order.
    order: Vec<(usize, Vec<u8>)>,
}

impl MruScanner {
    /// Builds a scanner over the given patterns.
    pub fn new<I, P>(patterns: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        MruScanner {
            order: patterns.into_iter().map(|p| p.as_ref().to_vec()).enumerate().collect(),
        }
    }

    /// Number of patterns.
    pub fn pattern_count(&self) -> usize {
        self.order.len()
    }

    /// Finds all occurrences, promoting matching patterns to the front.
    pub fn find_all(&mut self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.scan(haystack, &mut out, |_| false);
        out.sort_unstable_by_key(|m| (m.end, m.start, m.pattern));
        out
    }

    /// Scans patterns in MRU order, stopping as soon as `done` returns true
    /// when passed the matches collected so far. Matching patterns are
    /// promoted regardless of early exit.
    pub fn find_all_until<F>(&mut self, haystack: &[u8], done: F) -> Vec<Match>
    where
        F: Fn(&[Match]) -> bool,
    {
        let mut out = Vec::new();
        self.scan(haystack, &mut out, |ms| done(ms));
        out
    }

    fn scan<F>(&mut self, haystack: &[u8], out: &mut Vec<Match>, done: F)
    where
        F: Fn(&[Match]) -> bool,
    {
        let mut promote: Vec<usize> = Vec::new();
        for (pos, (pi, pat)) in self.order.iter().enumerate() {
            let before = out.len();
            find_one(*pi, pat, haystack, out);
            if out.len() > before {
                promote.push(pos);
            }
            if done(out) {
                break;
            }
        }
        // Promote matched patterns to the front, preserving their relative
        // order (stable MRU).
        for (shift, pos) in promote.into_iter().enumerate() {
            let item = self.order.remove(pos);
            self.order.insert(shift, item);
        }
    }
}

fn find_one(id: usize, pat: &[u8], haystack: &[u8], out: &mut Vec<Match>) {
    if pat.is_empty() || pat.len() > haystack.len() {
        return;
    }
    let mut i = 0;
    while i + pat.len() <= haystack.len() {
        if &haystack[i..i + pat.len()] == pat {
            out.push(Match { pattern: id, start: i, end: i + pat.len() });
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ahocorasick::AhoCorasick;

    #[test]
    fn naive_agrees_with_aho_corasick() {
        let pats = ["SELECT", "FROM", "OR", " LIMIT 5", "=", "users"];
        let hay: &[u8] = b"SELECT * FROM users WHERE a=b OR c=d LIMIT 5";
        let naive = NaiveScanner::new(pats);
        let ac = AhoCorasick::new(pats);
        let mut a = naive.find_all(hay);
        let mut b = ac.find_all(hay);
        a.sort_unstable_by_key(|m| (m.pattern, m.start));
        b.sort_unstable_by_key(|m| (m.pattern, m.start));
        assert_eq!(a, b);
    }

    #[test]
    fn mru_promotes_matching_patterns() {
        let mut mru = MruScanner::new(["zzz", "yyy", "abc"]);
        mru.find_all(b"xx abc xx");
        // "abc" (id 2) should now be tried first.
        assert_eq!(mru.order[0].0, 2);
    }

    #[test]
    fn mru_same_results_after_promotion() {
        let pats = ["ab", "bc", "abc"];
        let hay = b"zabcz";
        let mut mru = MruScanner::new(pats);
        let first = mru.find_all(hay);
        let second = mru.find_all(hay);
        assert_eq!(first, second);
    }

    #[test]
    fn early_exit_stops_scanning() {
        let mut mru = MruScanner::new(["hit", "also-present", "absent"]);
        let out = mru.find_all_until(b"hit also-present", |ms| !ms.is_empty());
        // Stopped after the first matching pattern.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pattern, 0);
    }

    #[test]
    fn empty_and_oversized_patterns_ignored() {
        let naive = NaiveScanner::new(["", "waaaay too long for the haystack"]);
        assert!(naive.find_all(b"short").is_empty());
    }
}
