//! Q-gram counting lower bound for edit distance.
//!
//! One of the "heuristics to skip implausible comparisons" the paper cites
//! for NTI (§III-A, §VI-B). If a pattern and a text share too few q-grams,
//! no substring of the text can be within a small edit distance of the
//! pattern, so the quadratic Sellers computation can be skipped.
//!
//! The bound is Ukkonen's: a single edit operation destroys at most `q`
//! q-grams, so if `ed(p, s) <= k` for some substring `s` of `t`, then `p`
//! and `t` share at least `(|p| - q + 1) - k·q` q-grams (counting
//! multiplicity on the pattern side, and `t`'s grams as a superset of every
//! substring's grams).

use std::collections::HashMap;

/// Multiset of q-grams of `s`, keyed by gram bytes.
fn profile(s: &[u8], q: usize) -> HashMap<&[u8], usize> {
    let mut map = HashMap::new();
    if s.len() >= q {
        for w in s.windows(q) {
            *map.entry(w).or_insert(0) += 1;
        }
    }
    map
}

/// A lower bound on the edit distance between `pattern` and the
/// best-matching substring of `text`.
///
/// Returns 0 when the bound is uninformative (e.g. `pattern` shorter than
/// `q`). The bound is safe: the true minimal substring edit distance is
/// never smaller than the returned value.
///
/// # Examples
///
/// ```
/// use joza_strmatch::qgram::lower_bound;
/// use joza_strmatch::sellers::substring_distance;
///
/// let p = b"UNION SELECT password FROM users";
/// let t = b"completely unrelated text zzzz";
/// let lb = lower_bound(p, t, 3);
/// assert!(lb <= substring_distance(p, t).distance);
/// assert!(lb > 3); // enough to skip a threshold-3 comparison
/// ```
pub fn lower_bound(pattern: &[u8], text: &[u8], q: usize) -> usize {
    QgramProfile::new(text, q).lower_bound(pattern)
}

/// A text's q-gram multiset, built once and reused across many patterns.
///
/// NTI checks every request input against the *same* intercepted query, so
/// rebuilding the query's gram profile for each input (as the free
/// [`lower_bound`] does) repeats the expensive half of the bound. Build a
/// `QgramProfile` of the query once per `analyze` call and ask it for the
/// per-input bound instead.
///
/// # Examples
///
/// ```
/// use joza_strmatch::qgram::{lower_bound, QgramProfile};
///
/// let query = b"SELECT * FROM t WHERE id=-1 OR 1=1";
/// let profile = QgramProfile::new(query, 3);
/// for input in [b"-1 OR 1=1".as_slice(), b"zzzzzzzz".as_slice()] {
///     assert_eq!(profile.lower_bound(input), lower_bound(input, query, 3));
/// }
/// ```
pub struct QgramProfile<'t> {
    q: usize,
    grams: HashMap<&'t [u8], usize>,
}

impl<'t> QgramProfile<'t> {
    /// Builds the q-gram multiset of `text`.
    pub fn new(text: &'t [u8], q: usize) -> Self {
        let grams = if q == 0 { HashMap::new() } else { profile(text, q) };
        QgramProfile { q, grams }
    }

    /// A lower bound on the edit distance between `pattern` and the
    /// best-matching substring of the profiled text — identical to
    /// [`lower_bound`] with the same `q`.
    pub fn lower_bound(&self, pattern: &[u8]) -> usize {
        let q = self.q;
        if pattern.len() < q || q == 0 {
            return 0;
        }
        let p_grams = pattern.len() - q + 1;
        let pp = profile(pattern, q);
        let mut common = 0usize;
        for (gram, &cnt) in &pp {
            if let Some(&tcnt) = self.grams.get(gram) {
                common += cnt.min(tcnt);
            }
        }
        let missing = p_grams - common.min(p_grams);
        missing.div_ceil(q)
    }
}

/// Quick length-based plausibility check: can any substring of a text of
/// length `text_len` be within `cutoff` edits of a pattern of length
/// `pattern_len`?
///
/// A pattern longer than the whole text by more than `cutoff` cannot match.
pub fn length_plausible(pattern_len: usize, text_len: usize, cutoff: usize) -> bool {
    pattern_len <= text_len + cutoff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sellers::substring_distance;

    #[test]
    fn bound_is_sound_on_samples() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"hello world", b"say hello world!"),
            (b"hello world", b"completely different"),
            (b"OR 1=1", b"SELECT * WHERE id=1 OR 1=1"),
            (b"abcabcabc", b"abc"),
            (b"", b"xyz"),
            (b"ab", b"xyz"),
        ];
        for &(p, t) in cases {
            let lb = lower_bound(p, t, 3);
            let real = substring_distance(p, t).distance;
            assert!(lb <= real, "lb {lb} > real {real} for {p:?} in {t:?}");
        }
    }

    #[test]
    fn exact_containment_gives_zero_bound() {
        assert_eq!(lower_bound(b"fragment", b"xx fragment yy", 3), 0);
    }

    #[test]
    fn disjoint_alphabets_give_strong_bound() {
        let p = b"aaaaaaaaaaaaaaaaaaaa";
        let t = b"bbbbbbbbbbbbbbbbbbbb";
        assert!(lower_bound(p, t, 3) >= 6);
    }

    #[test]
    fn short_pattern_uninformative() {
        assert_eq!(lower_bound(b"ab", b"zzzz", 3), 0);
    }

    #[test]
    fn length_plausibility() {
        assert!(length_plausible(5, 10, 0));
        assert!(length_plausible(12, 10, 2));
        assert!(!length_plausible(13, 10, 2));
    }
}
