//! From-scratch Aho–Corasick multi-pattern matcher.
//!
//! PTI must find every occurrence of every program string fragment inside
//! an intercepted query (§III-B). The paper's daemon does this with a
//! fragment scan plus caching; we additionally provide an Aho–Corasick
//! automaton so the `bench` crate can compare the naive scanner, the MRU
//! scanner (the paper's optimization), and the automaton.
//!
//! The automaton is byte-oriented. Construction is the textbook algorithm:
//! a trie of all patterns, breadth-first computation of failure links, and
//! output sets merged along failure links.

/// An occurrence of one pattern in the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Match {
    /// Index of the pattern (in construction order).
    pub pattern: usize,
    /// Byte offset where the occurrence starts.
    pub start: usize,
    /// Byte offset one past the end of the occurrence.
    pub end: usize,
}

#[derive(Debug, Clone)]
struct Node {
    /// Sparse transitions: sorted by byte for binary search.
    trans: Vec<(u8, u32)>,
    fail: u32,
    /// Pattern ids ending at this node (including via failure links).
    out: Vec<u32>,
}

impl Node {
    fn new() -> Self {
        Node { trans: Vec::new(), fail: 0, out: Vec::new() }
    }

    fn next(&self, b: u8) -> Option<u32> {
        self.trans.binary_search_by_key(&b, |&(byte, _)| byte).ok().map(|i| self.trans[i].1)
    }
}

/// A multi-pattern matcher over byte strings.
///
/// # Examples
///
/// ```
/// use joza_strmatch::ahocorasick::AhoCorasick;
///
/// let ac = AhoCorasick::new(["SELECT", "FROM", "OR"]);
/// let hits = ac.find_all(b"SELECT x FROM t");
/// let pats: Vec<usize> = hits.iter().map(|m| m.pattern).collect();
/// assert_eq!(pats, [0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lens: Vec<usize>,
}

impl AhoCorasick {
    /// Builds the automaton from an iterator of patterns.
    ///
    /// Empty patterns are accepted but never match. Duplicate patterns each
    /// get their own id and all ids are reported on a hit.
    pub fn new<I, P>(patterns: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        let mut nodes = vec![Node::new()];
        let mut pattern_lens = Vec::new();
        for pat in patterns {
            let pat = pat.as_ref();
            let id = pattern_lens.len() as u32;
            pattern_lens.push(pat.len());
            if pat.is_empty() {
                continue;
            }
            let mut cur = 0u32;
            for &b in pat {
                cur = match nodes[cur as usize].next(b) {
                    Some(n) => n,
                    None => {
                        let n = nodes.len() as u32;
                        nodes.push(Node::new());
                        let node = &mut nodes[cur as usize];
                        let pos =
                            node.trans.binary_search_by_key(&b, |&(byte, _)| byte).unwrap_err();
                        node.trans.insert(pos, (b, n));
                        n
                    }
                };
            }
            nodes[cur as usize].out.push(id);
        }

        // BFS to compute failure links and merge outputs.
        let mut queue = std::collections::VecDeque::new();
        let root_children: Vec<(u8, u32)> = nodes[0].trans.clone();
        for &(_, child) in &root_children {
            nodes[child as usize].fail = 0;
            queue.push_back(child);
        }
        while let Some(v) = queue.pop_front() {
            let trans = nodes[v as usize].trans.clone();
            for (b, child) in trans {
                queue.push_back(child);
                let mut f = nodes[v as usize].fail;
                let fail_target = loop {
                    if let Some(n) = nodes[f as usize].next(b) {
                        break n;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                // Avoid self-loop when the child hangs off the root.
                let fail_target = if fail_target == child { 0 } else { fail_target };
                nodes[child as usize].fail = fail_target;
                let inherited = nodes[fail_target as usize].out.clone();
                nodes[child as usize].out.extend(inherited);
            }
        }

        AhoCorasick { nodes, pattern_lens }
    }

    /// Number of patterns in the automaton.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Length of pattern `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pattern_len(&self, id: usize) -> usize {
        self.pattern_lens[id]
    }

    /// Finds all occurrences of all patterns in `haystack`, in increasing
    /// order of end offset.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.for_each_match(haystack, |m| out.push(m));
        out
    }

    /// Streams every occurrence to `f` without allocating.
    pub fn for_each_match<F: FnMut(Match)>(&self, haystack: &[u8], mut f: F) {
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            loop {
                if let Some(n) = self.nodes[state as usize].next(b) {
                    state = n;
                    break;
                }
                if state == 0 {
                    break;
                }
                state = self.nodes[state as usize].fail;
            }
            for &pat in &self.nodes[state as usize].out {
                let len = self.pattern_lens[pat as usize];
                f(Match { pattern: pat as usize, start: i + 1 - len, end: i + 1 });
            }
        }
    }

    /// Returns `true` if any pattern occurs in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut state = 0u32;
        for &b in haystack {
            loop {
                if let Some(n) = self.nodes[state as usize].next(b) {
                    state = n;
                    break;
                }
                if state == 0 {
                    break;
                }
                state = self.nodes[state as usize].fail;
            }
            if !self.nodes[state as usize].out.is_empty() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(ac: &AhoCorasick, hay: &[u8]) -> Vec<(usize, usize, usize)> {
        ac.find_all(hay).iter().map(|m| (m.pattern, m.start, m.end)).collect()
    }

    #[test]
    fn single_pattern() {
        let ac = AhoCorasick::new(["abc"]);
        assert_eq!(spans(&ac, b"zabcz"), vec![(0, 1, 4)]);
    }

    #[test]
    fn overlapping_patterns() {
        let ac = AhoCorasick::new(["he", "she", "his", "hers"]);
        let got = spans(&ac, b"ushers");
        assert!(got.contains(&(1, 1, 4))); // she
        assert!(got.contains(&(0, 2, 4))); // he
        assert!(got.contains(&(3, 2, 6))); // hers
    }

    #[test]
    fn repeated_occurrences() {
        let ac = AhoCorasick::new(["aa"]);
        assert_eq!(spans(&ac, b"aaaa"), vec![(0, 0, 2), (0, 1, 3), (0, 2, 4)]);
    }

    #[test]
    fn pattern_is_prefix_of_other() {
        let ac = AhoCorasick::new(["SELECT", "SELECT *"]);
        let got = spans(&ac, b"SELECT * FROM t");
        assert!(got.contains(&(0, 0, 6)));
        assert!(got.contains(&(1, 0, 8)));
    }

    #[test]
    fn empty_pattern_never_matches() {
        let ac = AhoCorasick::new(["", "x"]);
        assert_eq!(spans(&ac, b"x"), vec![(1, 0, 1)]);
    }

    #[test]
    fn no_patterns() {
        let ac = AhoCorasick::new(Vec::<&str>::new());
        assert!(ac.find_all(b"whatever").is_empty());
        assert!(!ac.is_match(b"whatever"));
    }

    #[test]
    fn duplicate_patterns_both_reported() {
        let ac = AhoCorasick::new(["ab", "ab"]);
        let got = spans(&ac, b"ab");
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn is_match_fast_path() {
        let ac = AhoCorasick::new(["needle"]);
        assert!(ac.is_match(b"hay needle hay"));
        assert!(!ac.is_match(b"hay hay hay"));
    }

    #[test]
    fn sql_fragments() {
        let frags = ["SELECT * FROM records WHERE ID=", " LIMIT 5", "id"];
        let ac = AhoCorasick::new(frags);
        let q = b"SELECT * FROM records WHERE ID=42 LIMIT 5";
        let got = spans(&ac, q);
        assert!(got.contains(&(0, 0, 31)));
        assert!(got.contains(&(1, 33, 41)));
    }

    #[test]
    fn matches_agree_with_naive_scan() {
        let pats: [&[u8]; 5] = [b"ab", b"bc", b"abc", b"c", b"cab"];
        let hay = b"abcabcababccab";
        let ac = AhoCorasick::new(pats);
        let mut expected = Vec::new();
        for (pi, p) in pats.iter().enumerate() {
            let mut i = 0;
            while i + p.len() <= hay.len() {
                if &hay[i..i + p.len()] == *p {
                    expected.push((pi, i, i + p.len()));
                }
                i += 1;
            }
        }
        let mut got = spans(&ac, hay);
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}
