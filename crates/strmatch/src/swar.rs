//! SWAR (SIMD-within-a-register) byte kernels for the per-check hot path.
//!
//! The gate's per-query constant costs are dominated by byte-at-a-time
//! scanning: the lexer classifies every byte of every query, and NTI
//! case-folds the query and each captured input before matching. These
//! kernels process **eight bytes per `u64` word** with pure integer
//! arithmetic — no `unsafe`, no platform intrinsics — and fall back to a
//! scalar tail for the last `len % 8` bytes.
//!
//! # Lane-mask construction
//!
//! A word holds eight byte *lanes* (little-endian, so lane 0 is the
//! lowest-addressed byte). Every predicate below produces a mask with bit
//! 7 of each lane set iff the predicate holds for that lane's byte, built
//! from two exact, carry-free primitives:
//!
//! * `ge_lanes(w, n)` for `n ≤ 128`: clear each lane's high bit, add
//!   `128 - n` per lane (sums stay ≤ 254, so no lane ever carries into
//!   its neighbour), and read bit 7 — set iff the low 7 bits are `≥ n`;
//!   OR back the original high bits (a byte `≥ 128` is trivially `≥ n`).
//! * `zero_lanes(x)`: a lane's low 7 bits plus `0x7f` sets bit 7 iff
//!   they are nonzero; OR in the original bit 7 and complement.
//!
//! Unlike the classic `haszero` subtraction trick, neither primitive
//! borrows across lanes, so the masks are **exact per lane** — safe both
//! for "find the first matching byte" scans and for whole-word
//! transformations like case folding.
//!
//! Every kernel has a scalar reference (`*_scalar`) that is the semantic
//! ground truth; `tests/proptests.rs` checks them byte-for-byte equal on
//! arbitrary inputs, and the module tests check every classifier on all
//! 256 byte values in every lane position.

/// One bit set in lane position 0 of each byte lane (`0x01` per byte).
const LANES: u64 = 0x0101_0101_0101_0101;
/// Bit 7 of every byte lane (`0x80` per byte).
const HIGHS: u64 = 0x8080_8080_8080_8080;
/// Low seven bits of every byte lane (`0x7f` per byte).
const LOWS: u64 = !HIGHS;

/// Loads eight bytes as a little-endian word (lane 0 = `chunk[0]`).
#[inline]
fn load(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
}

/// Mask of lanes whose byte is zero (bit 7 set per matching lane).
#[inline]
fn zero_lanes(x: u64) -> u64 {
    !(((x & LOWS) + LOWS) | x) & HIGHS
}

/// Mask of lanes whose byte equals `b` (any `b`, including `≥ 0x80`).
#[inline]
fn eq_lanes(w: u64, b: u8) -> u64 {
    zero_lanes(w ^ (LANES * u64::from(b)))
}

/// Mask of lanes whose byte is `≥ n`, for `n ≤ 128`.
#[inline]
fn ge_lanes(w: u64, n: u8) -> u64 {
    debug_assert!(n <= 128);
    (((w & LOWS) + (LANES * u64::from(128 - n))) | w) & HIGHS
}

/// Mask of lanes whose byte is in `lo..=hi`, for `hi < 128`.
#[inline]
fn range_lanes(w: u64, lo: u8, hi: u8) -> u64 {
    debug_assert!(hi < 128 && lo <= hi);
    ge_lanes(w, lo) & (ge_lanes(w, hi + 1) ^ HIGHS)
}

/// Mask of lanes holding an ASCII uppercase letter (`A..=Z`).
#[inline]
fn upper_lanes(w: u64) -> u64 {
    range_lanes(w, b'A', b'Z')
}

/// Mask of lanes holding an identifier-continue byte: ASCII alphanumeric,
/// `_`, `$`, or any byte `≥ 0x80` (the lexer treats multi-byte UTF-8
/// sequences as identifier characters).
#[inline]
fn ident_lanes(w: u64) -> u64 {
    range_lanes(w, b'0', b'9')
        | range_lanes(w, b'A', b'Z')
        | range_lanes(w, b'a', b'z')
        | eq_lanes(w, b'_')
        | eq_lanes(w, b'$')
        | (w & HIGHS)
}

/// Mask of lanes holding an ASCII whitespace byte (Rust's
/// `u8::is_ascii_whitespace` set: space, `\t`, `\n`, `\x0c`, `\r`).
#[inline]
fn ws_lanes(w: u64) -> u64 {
    range_lanes(w, 0x09, 0x0a) | range_lanes(w, 0x0c, 0x0d) | eq_lanes(w, b' ')
}

/// Mask of lanes holding an ASCII hex digit.
#[inline]
fn hex_lanes(w: u64) -> u64 {
    range_lanes(w, b'0', b'9') | range_lanes(w, b'A', b'F') | range_lanes(w, b'a', b'f')
}

/// Index (0..8) of the first set lane in `mask`, which must be nonzero.
#[inline]
fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() as usize) / 8
}

/// The canonical scalar classifier behind the identifier lane mask; the
/// lexer's
/// identifier-continue predicate.
#[inline]
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$' || b >= 0x80
}

/// Generic word-at-a-time scan: advances from `from` while `stop_lanes`
/// stays all-clear, then finishes the sub-word tail with `stop_byte`.
/// Returns the index of the first byte for which `stop_byte` holds (or
/// `s.len()`).
#[inline]
fn scan(
    s: &[u8],
    from: usize,
    stop_lanes: impl Fn(u64) -> u64,
    stop_byte: impl Fn(u8) -> bool,
) -> usize {
    let mut i = from.min(s.len());
    let mut chunks = s[i..].chunks_exact(8);
    for chunk in &mut chunks {
        let stop = stop_lanes(load(chunk));
        if stop != 0 {
            return i + first_lane(stop);
        }
        i += 8;
    }
    while i < s.len() && !stop_byte(s[i]) {
        i += 1;
    }
    i
}

/// First index `≥ from` whose byte is **not** identifier-continue
/// ([`is_ident_byte`]), or `s.len()`.
pub fn scan_ident(s: &[u8], from: usize) -> usize {
    scan(s, from, |w| !ident_lanes(w) & HIGHS, |b| !is_ident_byte(b))
}

/// Scalar reference for [`scan_ident`]: one byte at a time, no words.
pub fn scan_ident_scalar(s: &[u8], from: usize) -> usize {
    let mut i = from.min(s.len());
    while i < s.len() && is_ident_byte(s[i]) {
        i += 1;
    }
    i
}

/// First index `≥ from` whose byte is not an ASCII digit, or `s.len()`.
pub fn scan_digits(s: &[u8], from: usize) -> usize {
    scan(s, from, |w| !range_lanes(w, b'0', b'9') & HIGHS, |b| !b.is_ascii_digit())
}

/// First index `≥ from` whose byte is not an ASCII hex digit, or `s.len()`.
pub fn scan_hex(s: &[u8], from: usize) -> usize {
    scan(s, from, |w| !hex_lanes(w) & HIGHS, |b| !b.is_ascii_hexdigit())
}

/// First index `≥ from` whose byte is not ASCII whitespace, or `s.len()`.
pub fn scan_ws(s: &[u8], from: usize) -> usize {
    scan(s, from, |w| !ws_lanes(w) & HIGHS, |b| !b.is_ascii_whitespace())
}

/// First index `≥ from` whose byte equals `b`, or `s.len()`.
pub fn find_byte(s: &[u8], from: usize, b: u8) -> usize {
    scan(s, from, |w| eq_lanes(w, b), |x| x == b)
}

/// First index `≥ from` whose byte equals `b1` or `b2`, or `s.len()`.
pub fn find_byte2(s: &[u8], from: usize, b1: u8, b2: u8) -> usize {
    scan(s, from, |w| eq_lanes(w, b1) | eq_lanes(w, b2), |x| x == b1 || x == b2)
}

/// Index of the first ASCII uppercase byte, or `None`.
pub fn first_ascii_upper(s: &[u8]) -> Option<usize> {
    let i = scan(s, 0, upper_lanes, |b| b.is_ascii_uppercase());
    (i < s.len()).then_some(i)
}

/// Appends the ASCII-lowercased copy of `src` to `out`, eight bytes per
/// word: lanes holding `A..=Z` get bit 5 ORed in (`0x80` mask shifted
/// right twice is exactly `0x20`), every other byte — including
/// multi-byte UTF-8 — passes through untouched.
pub fn fold_lower_into(src: &[u8], out: &mut Vec<u8>) {
    // One bulk copy, then fold in place: the word loop touches memory the
    // copy already paid for, with no per-word capacity checks.
    let start = out.len();
    out.extend_from_slice(src);
    let mut chunks = out[start..].chunks_exact_mut(8);
    for chunk in &mut chunks {
        let w = load(chunk);
        chunk.copy_from_slice(&(w | (upper_lanes(w) >> 2)).to_le_bytes());
    }
    for b in chunks.into_remainder() {
        *b = b.to_ascii_lowercase();
    }
}

/// Scalar reference for [`fold_lower_into`].
pub fn fold_lower_into_scalar(src: &[u8], out: &mut Vec<u8>) {
    out.extend(src.iter().map(u8::to_ascii_lowercase));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Places byte `b` in every lane position of an otherwise-benign word
    /// and checks the lane mask against the scalar predicate.
    fn assert_lanes_exact(lanes: impl Fn(u64) -> u64, scalar: impl Fn(u8) -> bool) {
        for b in 0..=255u8 {
            for pos in 0..8 {
                let mut bytes = [b'x'; 8];
                bytes[pos] = b;
                let mask = lanes(load(&bytes));
                let got = mask & (0x80u64 << (pos * 8)) != 0;
                assert_eq!(got, scalar(b), "byte {b:#04x} in lane {pos}");
                // No mask bit may appear outside lane high-bit positions.
                assert_eq!(mask & !HIGHS, 0, "byte {b:#04x} in lane {pos}: stray bits");
            }
        }
    }

    #[test]
    fn upper_lanes_exact() {
        assert_lanes_exact(upper_lanes, |b| b.is_ascii_uppercase());
    }

    #[test]
    fn ident_lanes_exact() {
        assert_lanes_exact(ident_lanes, is_ident_byte);
    }

    #[test]
    fn ws_lanes_exact() {
        assert_lanes_exact(ws_lanes, |b| b.is_ascii_whitespace());
    }

    #[test]
    fn digit_and_hex_lanes_exact() {
        assert_lanes_exact(|w| range_lanes(w, b'0', b'9'), |b| b.is_ascii_digit());
        assert_lanes_exact(hex_lanes, |b| b.is_ascii_hexdigit());
    }

    #[test]
    fn eq_lanes_exact() {
        for target in [0u8, b'\'', b'\\', b'\n', b'`', 0x7f, 0x80, 0xff] {
            assert_lanes_exact(|w| eq_lanes(w, target), |b| b == target);
        }
    }

    #[test]
    fn scans_cross_word_boundaries() {
        let s = b"abcdefgh12345678_tail stop";
        assert_eq!(scan_ident(s, 0), 21);
        assert_eq!(scan_ident(s, 21), 21);
        assert_eq!(scan_ident(s, 22), s.len());
        assert_eq!(scan_digits(b"12345678901 x", 0), 11);
        assert_eq!(find_byte(b"aaaaaaaaaaaaaaaab", 0, b'b'), 16);
        assert_eq!(find_byte(b"abc", 0, b'z'), 3);
        assert_eq!(find_byte2(b"0123456789'x", 0, b'\'', b'\\'), 10);
        assert_eq!(scan_ws(b"   \t\n  x", 0), 7);
    }

    #[test]
    fn scan_from_past_end_is_len() {
        assert_eq!(scan_ident(b"ab", 5), 2);
        assert_eq!(find_byte(b"", 0, b'x'), 0);
    }

    #[test]
    fn fold_lower_matches_scalar() {
        let cases: &[&[u8]] = &[
            b"",
            b"SELECT * FROM T WHERE ID=42",
            b"already lower",
            "Ärger im WHERE".as_bytes(),
            &[0x80, 0xff, b'A', b'Z', b'@', b'[', b'a', b'z', 0x00],
        ];
        for src in cases {
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            fold_lower_into(src, &mut fast);
            fold_lower_into_scalar(src, &mut slow);
            assert_eq!(fast, slow, "{src:?}");
        }
    }

    #[test]
    fn first_upper_positions() {
        assert_eq!(first_ascii_upper(b"abcdefghijK"), Some(10));
        assert_eq!(first_ascii_upper(b"all lower"), None);
        assert_eq!(first_ascii_upper(b""), None);
        assert_eq!(first_ascii_upper("ä Z".as_bytes()), Some(3));
    }
}
