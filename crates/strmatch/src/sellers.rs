//! Sellers' semi-global alignment: approximate *substring* matching.
//!
//! NTI (§III-A) needs, for an input `p` and a query `q`, the substring of
//! `q` whose edit distance to `p` is minimal — the "matched query
//! substring" whose length divides the distance to form the difference
//! ratio. Sellers' algorithm computes this in `O(|p|·|q|)` time with linear
//! memory by letting the alignment start for free at any position of `q`
//! (row zero initialized to zeros) and end at any position (minimum over
//! the last row).

use std::ops::Range;

/// The best approximate occurrence of a pattern inside a text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubstringMatch {
    /// Byte offset in the text where the matched substring starts.
    pub start: usize,
    /// Byte offset in the text one past the end of the matched substring.
    pub end: usize,
    /// Edit distance between the pattern and `text[start..end]`.
    pub distance: usize,
}

impl SubstringMatch {
    /// The matched span as a byte range into the text.
    ///
    /// # Examples
    ///
    /// ```
    /// use joza_strmatch::sellers::substring_distance;
    ///
    /// let m = substring_distance(b"world", b"hello world");
    /// assert_eq!(m.range(), 6..11);
    /// ```
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Length of the matched substring of the text.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the matched substring is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The paper's *difference ratio*: edit distance divided by the length
    /// of the matched query substring (§III-A). An empty match yields a
    /// ratio of `f64::INFINITY` unless the distance is also zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use joza_strmatch::sellers::substring_distance;
    ///
    /// let m = substring_distance(b"abcd", b"xxabcdxx");
    /// assert_eq!(m.diff_ratio(), 0.0);
    /// ```
    pub fn diff_ratio(&self) -> f64 {
        if self.distance == 0 {
            0.0
        } else if self.is_empty() {
            f64::INFINITY
        } else {
            self.distance as f64 / self.len() as f64
        }
    }
}

/// Finds the substring of `text` with minimal edit distance to `pattern`.
///
/// Among spans with equal distance, the one with the smallest
/// [difference ratio](SubstringMatch::diff_ratio) (i.e. the longest match)
/// is preferred; remaining ties resolve to the leftmost span.
///
/// An empty `pattern` matches the empty substring at offset 0 with
/// distance 0.
///
/// # Examples
///
/// ```
/// use joza_strmatch::sellers::substring_distance;
///
/// // Exact containment.
/// let m = substring_distance(b"OR 1=1", b"SELECT * FROM t WHERE id=-1 OR 1=1");
/// assert_eq!((m.distance, m.range()), (0, 28..34));
///
/// // Approximate: query contains an escaped variant of the input.
/// let m = substring_distance(b"don't", b"WHERE name='don\\'t'");
/// assert_eq!(m.distance, 1);
/// ```
pub fn substring_distance(pattern: &[u8], text: &[u8]) -> SubstringMatch {
    let n = pattern.len();
    let m = text.len();
    if n == 0 {
        return SubstringMatch { start: 0, end: 0, distance: 0 };
    }
    if m == 0 {
        return SubstringMatch { start: 0, end: 0, distance: n };
    }
    let (dist, start) = final_row(pattern, text);

    let mut best = SubstringMatch { start: start[0], end: 0, distance: dist[0] };
    let mut best_ratio = ratio_key(best.distance, best.len());
    for j in 1..=m {
        let cand = SubstringMatch { start: start[j], end: j, distance: dist[j] };
        let key = ratio_key(cand.distance, cand.len());
        if cand.distance < best.distance || (cand.distance == best.distance && key < best_ratio) {
            best = cand;
            best_ratio = key;
        }
    }
    best
}

/// The last DP row of Sellers' semi-global alignment: for every end
/// position `j` of `text`, the minimal edit distance of `pattern` against
/// a substring ending at `j` (`dist[j]`) and where that substring begins
/// (`start[j]`, following the diagonal-then-deletion-then-insertion tie
/// break that keeps spans tight-but-leftmost).
///
/// `pattern` must be non-empty. Shared by the classic kernel (which scans
/// the whole row) and the bit-parallel kernel (which runs it only over
/// the small winning window to recover exact spans).
pub(crate) fn final_row(pattern: &[u8], text: &[u8]) -> (Vec<usize>, Vec<usize>) {
    let m = text.len();
    // dist[j]: min edit distance of pattern vs some substring of text
    // ending at j. start[j]: where that substring begins.
    let mut prev_dist: Vec<usize> = vec![0; m + 1];
    let mut prev_start: Vec<usize> = (0..=m).collect();
    let mut cur_dist: Vec<usize> = vec![0; m + 1];
    let mut cur_start: Vec<usize> = vec![0; m + 1];

    for (i, &pc) in pattern.iter().enumerate() {
        cur_dist[0] = i + 1;
        cur_start[0] = 0;
        for j in 1..=m {
            let sub = prev_dist[j - 1] + usize::from(pc != text[j - 1]);
            let del = prev_dist[j] + 1; // skip pattern byte
            let ins = cur_dist[j - 1] + 1; // skip text byte
                                           // Prefer diagonal, then deletion, then insertion: keeps the
                                           // match span tight-but-leftmost on ties.
            if sub <= del && sub <= ins {
                cur_dist[j] = sub;
                cur_start[j] = prev_start[j - 1];
            } else if del <= ins {
                cur_dist[j] = del;
                cur_start[j] = prev_start[j];
            } else {
                cur_dist[j] = ins;
                cur_start[j] = cur_start[j - 1];
            }
        }
        std::mem::swap(&mut prev_dist, &mut cur_dist);
        std::mem::swap(&mut prev_start, &mut cur_start);
    }
    (prev_dist, prev_start)
}

/// The paper's "simplest form" of NTI's substring matching: compare every
/// substring of `text` against `pattern` with plain Levenshtein — the
/// `O(n² × m²)` baseline §III-A calls "impractical for long queries".
///
/// Kept as a correctness oracle (property tests check agreement with the
/// `O(n·m)` [`substring_distance`]) and for the complexity-contrast
/// benchmark. Do not use it on production-sized inputs.
///
/// # Examples
///
/// ```
/// use joza_strmatch::sellers::{naive_substring_distance, substring_distance};
///
/// let (p, t) = (b"OR 1=1".as_slice(), b"WHERE id=-1 OR 1=1".as_slice());
/// assert_eq!(naive_substring_distance(p, t).distance, substring_distance(p, t).distance);
/// ```
pub fn naive_substring_distance(pattern: &[u8], text: &[u8]) -> SubstringMatch {
    let n = pattern.len();
    let m = text.len();
    if n == 0 {
        return SubstringMatch { start: 0, end: 0, distance: 0 };
    }
    if m == 0 {
        return SubstringMatch { start: 0, end: 0, distance: n };
    }
    let mut best = SubstringMatch { start: 0, end: 0, distance: n };
    let mut best_ratio = ratio_key(best.distance, best.len());
    for start in 0..m {
        for end in start..=m {
            let d = crate::levenshtein::distance(pattern, &text[start..end]);
            let cand = SubstringMatch { start, end, distance: d };
            let key = ratio_key(d, cand.len());
            if d < best.distance || (d == best.distance && key < best_ratio) {
                best = cand;
                best_ratio = key;
            }
        }
    }
    best
}

/// Finds the best approximate occurrence only if its distance is at most
/// `cutoff`; returns `None` otherwise.
///
/// Functionally `substring_distance(..).distance <= cutoff`, but callers use
/// it with the [q-gram prefilter](crate::qgram) to skip the quadratic work
/// entirely when no plausible match exists.
pub fn bounded_substring_distance(
    pattern: &[u8],
    text: &[u8],
    cutoff: usize,
) -> Option<SubstringMatch> {
    if crate::qgram::lower_bound(pattern, text, 3) > cutoff {
        return None;
    }
    let m = substring_distance(pattern, text);
    (m.distance <= cutoff).then_some(m)
}

pub(crate) fn ratio_key(distance: usize, len: usize) -> f64 {
    if distance == 0 {
        0.0
    } else if len == 0 {
        f64::INFINITY
    } else {
        distance as f64 / len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::distance;

    #[test]
    fn exact_containment_is_zero() {
        let m = substring_distance(b"abc", b"xxabcxx");
        assert_eq!(m.distance, 0);
        assert_eq!(m.range(), 2..5);
    }

    #[test]
    fn whole_text_match() {
        let m = substring_distance(b"abc", b"abc");
        assert_eq!(m.distance, 0);
        assert_eq!(m.range(), 0..3);
    }

    #[test]
    fn empty_pattern() {
        let m = substring_distance(b"", b"anything");
        assert_eq!(m.distance, 0);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn empty_text() {
        let m = substring_distance(b"abc", b"");
        assert_eq!(m.distance, 3);
    }

    #[test]
    fn single_error() {
        let m = substring_distance(b"color", b"the colour red");
        assert_eq!(m.distance, 1);
        // "colour" with one deletion, or "colou"/"color"-ish span.
        assert!(m.len() >= 5);
    }

    #[test]
    fn never_exceeds_global_distance() {
        // Substring distance is at most the full Levenshtein distance.
        let p: &[u8] = b"SELECT name FROM users";
        let t: &[u8] = b"xxxSELECT nom FROM user_tblxxx";
        let m = substring_distance(p, t);
        assert!(m.distance <= distance(p, t));
    }

    #[test]
    fn matched_span_distance_agrees() {
        let p: &[u8] = b"1 OR 1=1";
        let t: &[u8] = b"SELECT * FROM t WHERE id=1  OR  1=1 LIMIT 5";
        let m = substring_distance(p, t);
        assert_eq!(distance(p, &t[m.range()]), m.distance);
    }

    #[test]
    fn magic_quotes_ratio_matches_paper() {
        // Fig. 2C scenario: each quote in the payload gains a backslash in
        // the query, so the distance equals the quote count and the
        // difference ratio lands around the paper's ~22.7%.
        let input = "-1'OR/*''''*/1=1-- -";
        let escaped = input.replace('\'', "\\'");
        let quotes = input.matches('\'').count();
        let m = substring_distance(input.as_bytes(), escaped.as_bytes());
        assert_eq!(m.distance, quotes);
        assert!(m.diff_ratio() > 0.15 && m.diff_ratio() < 0.30, "{}", m.diff_ratio());
    }

    #[test]
    fn bounded_none_when_above_cutoff() {
        assert!(bounded_substring_distance(b"abcdefgh", b"zzzzzzzz", 2).is_none());
    }

    #[test]
    fn bounded_some_when_within() {
        let m = bounded_substring_distance(b"hello", b"say hallo there", 1).unwrap();
        assert_eq!(m.distance, 1);
    }

    #[test]
    fn prefers_longer_match_on_distance_tie() {
        // Both "ab" (dist 1 via substitution) spans exist; ensure ratio
        // favours the longer/cleaner span when distances tie.
        let m = substring_distance(b"abcd", b"abxd...abcd");
        assert_eq!(m.distance, 0);
        assert_eq!(m.range(), 7..11);
    }
}
