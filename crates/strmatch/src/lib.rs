#![warn(missing_docs)]
//! Approximate and multi-pattern string matching substrate for Joza.
//!
//! The Joza paper (DSN 2015) relies on two string-matching workhorses:
//!
//! * **Negative taint inference (NTI)** needs *approximate substring
//!   matching*: for each application input it finds the substring of an
//!   intercepted SQL query with the smallest edit distance to the input
//!   (§III-A of the paper). This crate provides classic
//!   [Levenshtein distance](levenshtein::distance) along with
//!   [Sellers' semi-global alignment](sellers::substring_distance), a
//!   linear-memory variant, a banded early-exit variant, a
//!   [q-gram prefilter](qgram) used to skip implausible comparisons, and a
//!   [bit-parallel Myers/Hyyrö kernel](myers) that packs 64 DP rows per
//!   machine word and carries a threshold cutoff — the production NTI hot
//!   path, bit-identical to Sellers.
//!
//! * **Positive taint inference (PTI)** needs *exact multi-pattern
//!   matching*: finding every occurrence of every program string fragment
//!   inside a query (§III-B). This crate provides a from-scratch
//!   [Aho–Corasick automaton](ahocorasick::AhoCorasick) as well as the
//!   paper's original optimization — a [naive scanner with most-recently-used
//!   fragment reordering](mru::MruScanner) — so the Figure 7 ablation can
//!   compare both.
//!
//! All matchers operate on bytes; case folding and whitespace normalization
//! are the caller's responsibility and provided as small helpers in
//! [`normalize`].
//!
//! # Examples
//!
//! ```
//! use joza_strmatch::sellers::substring_distance;
//!
//! // The attack input appears verbatim inside the query: distance 0.
//! let m = substring_distance(b"-1 OR 1=1", b"SELECT * FROM t WHERE id=-1 OR 1=1");
//! assert_eq!(m.distance, 0);
//! assert_eq!(m.range(), 25..34);
//! ```

pub mod ahocorasick;
pub mod levenshtein;
pub mod mru;
pub mod myers;
pub mod normalize;
pub mod qgram;
pub mod sellers;
pub mod swar;

pub use ahocorasick::{AhoCorasick, Match};
pub use levenshtein::{bounded_distance, distance};
pub use myers::{bounded_myers_substring_distance, myers_substring_distance, MatchKernel};
pub use sellers::{substring_distance, SubstringMatch};
