//! Bit-parallel approximate substring matching — Myers' 1999 bit-vector
//! algorithm in Hyyrö's semi-global (text search) adaptation, with an
//! Ukkonen-style threshold cutoff.
//!
//! NTI's hot path asks, for an input `p` and a query `q`, for the
//! substring of `q` with minimal edit distance to `p` (§III-A). The
//! classic [Sellers DP](crate::sellers::substring_distance) pays
//! `O(|p|·|q|)` scalar cell updates. This module packs 64 DP rows into one
//! machine word: each query byte advances the whole column with a handful
//! of word operations, so the cost drops to `O(⌈|p|/64⌉·|q|)` — with
//! multi-word support for patterns longer than 64 bytes.
//!
//! Two further optimizations exploit that NTI only cares about matches
//! whose distance is at most a threshold-derived bound `k`:
//!
//! * **Block cutoff** (Myers §5 / Hyyrö): only the word-blocks whose cells
//!   could still be ≤ `k` are advanced. A block is dropped once every cell
//!   in it provably exceeds `k` (bottom-of-block score ≥ `k + 64`) and
//!   reactivated — from the exact boundary score, via the deletion-chain
//!   upper bound, which is exact while the boundary stays above `k` —
//!   as soon as a ≤ `k` path could cross into it again.
//! * **Tail abandon**: last-row scores are 1-Lipschitz in the column, so
//!   once the provable lower bound on the current score exceeds
//!   `k + remaining_text`, no future end position can reach `k` and the
//!   scan stops early (only taken while no candidate has been seen, so
//!   the candidate set stays exact).
//!
//! The scan yields the minimal distance and every end position achieving
//! it; the classic Sellers traceback then runs **only on the winning
//! window** to recover exact `start..end` spans, and the final span is
//! chosen with exactly the tie-break rules of
//! [`substring_distance`](crate::sellers::substring_distance) — verdicts
//! and spans are bit-identical to the classic kernel (property-tested in
//! `tests/proptests.rs`).

use crate::sellers::{final_row, ratio_key, SubstringMatch};

/// Which approximate-matching kernel NTI runs (§III-A hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatchKernel {
    /// The quadratic Sellers DP — kept for the Fig. 7-style ablation and
    /// as the differential-testing oracle.
    Classic,
    /// Myers/Hyyrö bit-parallel semi-global alignment with the threshold
    /// cutoff; identical verdicts and spans, ~an order of magnitude
    /// cheaper on long queries.
    #[default]
    BitParallel,
}

impl std::fmt::Display for MatchKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MatchKernel::Classic => "classic",
            MatchKernel::BitParallel => "bit-parallel",
        })
    }
}

/// Word size of the bit-vector blocks.
const W: usize = 64;

/// Finds the substring of `text` with minimal edit distance to `pattern`
/// using the bit-parallel kernel — a drop-in replacement for
/// [`substring_distance`](crate::sellers::substring_distance) returning a
/// bit-identical result.
///
/// # Examples
///
/// ```
/// use joza_strmatch::myers::myers_substring_distance;
/// use joza_strmatch::sellers::substring_distance;
///
/// let (p, t) = (b"OR 1=1".as_slice(), b"SELECT * FROM t WHERE id=-1 OR 1=1".as_slice());
/// assert_eq!(myers_substring_distance(p, t), substring_distance(p, t));
/// ```
pub fn myers_substring_distance(pattern: &[u8], text: &[u8]) -> SubstringMatch {
    bounded_myers_substring_distance(pattern, text, pattern.len())
        .expect("k = |pattern| always admits the all-deletions match")
}

/// Finds the best approximate occurrence only if its distance is at most
/// `k`; returns `None` otherwise.
///
/// When `Some`, the result is bit-identical to what
/// [`substring_distance`](crate::sellers::substring_distance) would
/// return (and its distance is ≤ `k`); when `None`, every substring of
/// `text` is more than `k` edits from `pattern`. The threshold lets the
/// kernel skip word-blocks and abandon hopeless scans early, which is
/// where the NTI speedup on non-matching (input, query) pairs comes from.
pub fn bounded_myers_substring_distance(
    pattern: &[u8],
    text: &[u8],
    k: usize,
) -> Option<SubstringMatch> {
    let n = pattern.len();
    let m = text.len();
    if n == 0 {
        return Some(SubstringMatch { start: 0, end: 0, distance: 0 });
    }
    // A pattern longer than the whole text by more than k cannot match
    // within k (each unconsumed pattern byte costs one deletion).
    let k = k.min(n);
    if n > m + k {
        return None;
    }
    if m == 0 {
        return Some(SubstringMatch { start: 0, end: 0, distance: n });
    }

    let (d_star, ends) = scan(pattern, text, k)?;
    if d_star == 0 {
        // A distance-0 span is a verbatim occurrence: it ends at the first
        // zero-scoring column and starts exactly |pattern| bytes earlier
        // (the all-diagonal path, which is also what the Sellers tie-break
        // picks). No traceback needed.
        let end = ends[0];
        return Some(SubstringMatch { start: end - n, end, distance: 0 });
    }
    Some(recover_span(pattern, text, d_star, &ends))
}

/// One 64-row block advance (Myers' column update with Hyyrö's carry
/// plumbing). `hin` is the horizontal delta entering the block's top row
/// (-1, 0 or +1); returns the pre-shift `Ph`/`Mh` words so the caller can
/// read the horizontal delta at any row, plus the bit-63 carry for the
/// next block.
#[inline]
fn advance_block(pv: &mut u64, mv: &mut u64, mut eq: u64, hin: i32) -> (u64, u64, i32) {
    let pvv = *pv;
    let mvv = *mv;
    let xv = eq | mvv;
    if hin < 0 {
        eq |= 1;
    }
    let xh = (((eq & pvv).wrapping_add(pvv)) ^ pvv) | eq;
    let ph = mvv | !(xh | pvv);
    let mh = pvv & xh;
    let hout = ((ph >> (W - 1)) & 1) as i32 - ((mh >> (W - 1)) & 1) as i32;
    let mut ph_s = ph << 1;
    let mut mh_s = mh << 1;
    if hin < 0 {
        mh_s |= 1;
    } else if hin > 0 {
        ph_s |= 1;
    }
    *pv = mh_s | !(xv | ph_s);
    *mv = ph_s & xv;
    (ph, mh, hout)
}

/// The bit-parallel scan: minimal last-row score ≤ `k` over all end
/// positions, plus every end position achieving it (in increasing order).
/// Returns `None` when no end position scores ≤ `k`.
///
/// `pattern` and `text` are non-empty and `k ≤ |pattern|`.
fn scan(pattern: &[u8], text: &[u8], k: usize) -> Option<(usize, Vec<usize>)> {
    let n = pattern.len();
    let m = text.len();
    let blocks = n.div_ceil(W);
    let top = blocks - 1;
    let top_bit = (n - 1) % W; // bit of the last real pattern row

    // Peq[b][c]: bit i set iff pattern[b*64 + i] == c.
    let mut peq: Vec<[u64; 256]> = vec![[0u64; 256]; blocks];
    for (i, &pc) in pattern.iter().enumerate() {
        peq[i / W][pc as usize] |= 1u64 << (i % W);
    }

    let bot = |b: usize| ((b + 1) * W).min(n); // rows covered through block b
    let mut pv: Vec<u64> = vec![!0u64; blocks];
    let mut mv: Vec<u64> = vec![0u64; blocks];
    // bscore[b] = DP value at the bottom row of block b for the current
    // column; column 0 has D[i][0] = i.
    let mut bscore: Vec<usize> = (0..blocks).map(bot).collect();

    // Active band: blocks 0..=last are exact; every cell above is > k.
    let mut last = 0usize;
    while last < top && bscore[last] <= k {
        last += 1;
    }

    let mut best = usize::MAX;
    let mut ends: Vec<usize> = Vec::new();
    // Column 0: the empty-text-prefix end position.
    if last == top && n <= k {
        best = n;
        ends.push(0);
    }

    for (j, &tc) in text.iter().enumerate() {
        let mut hin = 0i32; // row 0 is free (semi-global)
        for b in 0..=last {
            let (ph, mh, hout) = advance_block(&mut pv[b], &mut mv[b], peq[b][tc as usize], hin);
            if b == top {
                bscore[b] =
                    (bscore[b] + ((ph >> top_bit) & 1) as usize) - ((mh >> top_bit) & 1) as usize;
            } else {
                bscore[b] = (bscore[b] as isize + hout as isize) as usize;
            }
            hin = hout;
        }

        // Shrink: drop the top active block while all its cells provably
        // exceed k (bottom score ≥ k + 64 ⇒ every row in it > k).
        while last > 0 && bscore[last] >= k + W {
            last -= 1;
        }
        // Grow: reactivate the block above as soon as a ≤ k path could
        // cross its lower boundary, seeding it with the deletion-chain
        // bound from the exact boundary score (exact for paths entering
        // this column; no cheaper path crossed while it was inactive).
        while last < top && bscore[last] <= k {
            last += 1;
            pv[last] = !0;
            mv[last] = 0;
            bscore[last] = bscore[last - 1] + (bot(last) - bot(last - 1));
        }

        if last == top && bscore[top] <= k {
            let s = bscore[top];
            match s.cmp(&best) {
                std::cmp::Ordering::Less => {
                    best = s;
                    ends.clear();
                    ends.push(j + 1);
                    if s == 0 {
                        // No later column can beat distance 0, and the
                        // leftmost zero wins the tie-break.
                        return Some((0, ends));
                    }
                }
                std::cmp::Ordering::Equal => ends.push(j + 1),
                std::cmp::Ordering::Greater => {}
            }
        } else if ends.is_empty() {
            // Tail abandon. Reactivated blocks carry scores that are only
            // exact at ≤ k, but block 0 is never dropped or reseeded, so
            // bscore[0] is the true D at its bottom row; the last row sits
            // at most n - bot(0) rows below it (scores are 1-Lipschitz
            // vertically) and moves by at most 1 per column horizontally,
            // so no remaining end position can score ≤ k once this bound
            // clears k + remaining.
            let lb = bscore[0].saturating_sub(n - bot(0));
            if lb > k + (m - j - 1) {
                return None;
            }
        }
    }

    if best == usize::MAX {
        None
    } else {
        Some((best, ends))
    }
}

/// Recovers the exact winning span: runs the classic Sellers traceback on
/// the window around the candidate end positions (every column a winning
/// path can touch, so the windowed DP decisions match the full DP's) and
/// applies `substring_distance`'s tie-break — minimal difference ratio,
/// then leftmost — among the minimal-distance candidates.
fn recover_span(pattern: &[u8], text: &[u8], d_star: usize, ends: &[usize]) -> SubstringMatch {
    let n = pattern.len();
    let lo = ends[0];
    let hi = *ends.last().expect("at least one candidate end");
    // A winning path at end j spans columns ≥ j - n - d*; its DP decisions
    // compare cells whose values are window-exact once the window starts
    // 2n columns earlier still (cell (i, c) only depends on text starts
    // ≥ c - 2i). 3n + d* + 1 before the first candidate covers both.
    let w = lo.saturating_sub(3 * n + d_star + 1);
    let (dist, start) = final_row(pattern, &text[w..hi]);

    let mut best: Option<(f64, SubstringMatch)> = None;
    for &end in ends {
        debug_assert_eq!(
            dist[end - w],
            d_star,
            "windowed Sellers disagrees with bit-parallel scan"
        );
        let cand = SubstringMatch { start: start[end - w] + w, end, distance: d_star };
        let key = ratio_key(d_star, cand.len());
        if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
            best = Some((key, cand));
        }
    }
    best.expect("candidate list is non-empty").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sellers::substring_distance;

    fn assert_identical(p: &[u8], t: &[u8]) {
        let classic = substring_distance(p, t);
        let fast = myers_substring_distance(p, t);
        assert_eq!(fast, classic, "pattern {:?} text {:?}", p, t);
    }

    #[test]
    fn matches_classic_on_basics() {
        assert_identical(b"abc", b"xxabcxx");
        assert_identical(b"abc", b"abc");
        assert_identical(b"abc", b"");
        assert_identical(b"", b"anything");
        assert_identical(b"color", b"the colour red");
        assert_identical(b"abcd", b"abxd...abcd");
        assert_identical(b"OR 1=1", b"SELECT * FROM t WHERE id=-1 OR 1=1");
        assert_identical(b"don't", b"WHERE name='don\\'t'");
    }

    #[test]
    fn matches_classic_on_dense_ties() {
        // Low-alphabet texts exercise the equal-distance tie-breaks.
        assert_identical(b"ab", b"aaaaabbbbbaaaa");
        assert_identical(b"aba", b"ababababab");
        assert_identical(b"aa", b"bbbb");
        assert_identical(b"abab", b"ba");
    }

    #[test]
    fn multiword_pattern_exact_containment() {
        // Pattern spans three 64-bit blocks.
        let p: Vec<u8> = (0..150u32).map(|i| b'a' + (i % 23) as u8).collect();
        let mut t = b"prefix---".to_vec();
        t.extend_from_slice(&p);
        t.extend_from_slice(b"---suffix");
        let m = myers_substring_distance(&p, &t);
        assert_eq!(m.distance, 0);
        assert_eq!(m.range(), 9..9 + p.len());
        assert_identical(&p, &t);
    }

    #[test]
    fn multiword_pattern_with_errors() {
        let p: Vec<u8> = (0..100u32).map(|i| b'a' + (i % 17) as u8).collect();
        let mut noisy = p.clone();
        noisy[10] = b'!';
        noisy[70] = b'?';
        noisy.remove(40);
        let mut t = b"xx".to_vec();
        t.extend_from_slice(&noisy);
        t.extend_from_slice(b"yy");
        assert_identical(&p, &t);
        let m = myers_substring_distance(&p, &t);
        assert_eq!(m.distance, 3);
    }

    #[test]
    fn exactly_64_and_65_byte_patterns() {
        for n in [63usize, 64, 65, 128, 129] {
            let p: Vec<u8> = (0..n).map(|i| b'a' + (i % 11) as u8).collect();
            let mut t = b"...".to_vec();
            t.extend_from_slice(&p[..n - 1]); // one deletion
            t.extend_from_slice(b"...");
            assert_identical(&p, &t);
        }
    }

    #[test]
    fn bounded_none_when_above_cutoff() {
        assert!(bounded_myers_substring_distance(b"abcdefgh", b"zzzzzzzzzzzz", 2).is_none());
    }

    #[test]
    fn bounded_some_matches_classic() {
        let m = bounded_myers_substring_distance(b"hello", b"say hallo there", 1).unwrap();
        assert_eq!(m, substring_distance(b"hello", b"say hallo there"));
        assert_eq!(m.distance, 1);
    }

    #[test]
    fn bounded_boundary_is_exact() {
        // Distance is exactly k: must be Some; k-1: must be None.
        let (p, t) = (b"abcdef".as_slice(), b"abXdef and more".as_slice());
        let d = substring_distance(p, t).distance;
        assert!(bounded_myers_substring_distance(p, t, d).is_some());
        if d > 0 {
            assert!(bounded_myers_substring_distance(p, t, d - 1).is_none());
        }
    }

    #[test]
    fn cutoff_skips_blocks_but_stays_exact() {
        // Long pattern + tight k: the block cutoff is exercised hard, the
        // answer must still be exact when the match exists.
        let p: Vec<u8> = (0..200usize).map(|i| b'a' + (i % 7) as u8).collect();
        let mut t: Vec<u8> = b"zzzz".iter().copied().cycle().take(300).collect();
        t.extend_from_slice(&p);
        t.extend_from_slice(b"zq");
        let m = bounded_myers_substring_distance(&p, &t, 3).unwrap();
        assert_eq!(m, substring_distance(&p, &t));
        assert_eq!(m.distance, 0);
    }

    #[test]
    fn empty_pattern_and_empty_text() {
        assert_eq!(
            myers_substring_distance(b"", b"xyz"),
            SubstringMatch { start: 0, end: 0, distance: 0 }
        );
        assert_eq!(
            myers_substring_distance(b"abc", b""),
            SubstringMatch { start: 0, end: 0, distance: 3 }
        );
        assert!(bounded_myers_substring_distance(b"abc", b"", 2).is_none());
        assert!(bounded_myers_substring_distance(b"abc", b"", 3).is_some());
    }

    #[test]
    fn kernel_display_names() {
        assert_eq!(MatchKernel::Classic.to_string(), "classic");
        assert_eq!(MatchKernel::BitParallel.to_string(), "bit-parallel");
        assert_eq!(MatchKernel::default(), MatchKernel::BitParallel);
    }
}
