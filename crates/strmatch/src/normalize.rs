//! Small byte-string normalization helpers.
//!
//! NTI "makes allowance for common and small string transformations
//! performed by an application, such as stripping whitespace and performing
//! case-conversions" (§III-A). The approximate matcher already absorbs small
//! edits; these helpers let the NTI configuration additionally normalize
//! case and whitespace before matching.

use std::borrow::Cow;

/// ASCII-lowercases a byte string, borrowing when no byte needs changing.
///
/// Inputs and queries on the NTI hot path are overwhelmingly already
/// lowercase (numeric ids, slugs, lowercased SQL), so the common case
/// allocates nothing: the input is scanned once and returned as
/// [`Cow::Borrowed`] unless an uppercase ASCII byte is found.
///
/// # Examples
///
/// ```
/// use std::borrow::Cow;
/// use joza_strmatch::normalize::to_lower;
///
/// assert_eq!(to_lower(b"SeLeCt").as_ref(), b"select");
/// assert!(matches!(to_lower(b"already lower 1=1"), Cow::Borrowed(_)));
/// ```
pub fn to_lower(s: &[u8]) -> Cow<'_, [u8]> {
    match s.iter().position(|b| b.is_ascii_uppercase()) {
        None => Cow::Borrowed(s),
        Some(first) => {
            let mut out = s.to_vec();
            for b in &mut out[first..] {
                *b = b.to_ascii_lowercase();
            }
            Cow::Owned(out)
        }
    }
}

/// Collapses runs of ASCII whitespace to a single space and trims the ends.
///
/// # Examples
///
/// ```
/// use joza_strmatch::normalize::collapse_ws;
///
/// assert_eq!(collapse_ws(b"  a \t b\n"), b"a b");
/// ```
pub fn collapse_ws(s: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.len());
    let mut in_ws = true; // leading whitespace is dropped
    for &b in s {
        if b.is_ascii_whitespace() {
            if !in_ws {
                out.push(b' ');
                in_ws = true;
            }
        } else {
            out.push(b);
            in_ws = false;
        }
    }
    if out.last() == Some(&b' ') {
        out.pop();
    }
    out
}

/// Trims ASCII whitespace from both ends (PHP `trim` on default charlist).
pub fn trim(s: &[u8]) -> &[u8] {
    let start = s.iter().position(|b| !b.is_ascii_whitespace()).unwrap_or(s.len());
    let end = s.iter().rposition(|b| !b.is_ascii_whitespace()).map_or(start, |i| i + 1);
    &s[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_passes_non_ascii() {
        assert_eq!(to_lower("ÄB".as_bytes()).as_ref(), "Äb".as_bytes());
    }

    #[test]
    fn lower_borrows_when_already_lower() {
        assert!(matches!(to_lower(b"select * from t"), Cow::Borrowed(_)));
        assert!(matches!(to_lower(b""), Cow::Borrowed(_)));
        assert!(matches!(to_lower("ä 1=1 -- ".as_bytes()), Cow::Borrowed(_)));
        assert!(matches!(to_lower(b"x WHERE y"), Cow::Owned(_)));
    }

    #[test]
    fn collapse_empty() {
        assert_eq!(collapse_ws(b""), b"");
        assert_eq!(collapse_ws(b"   "), b"");
    }

    #[test]
    fn collapse_interior() {
        assert_eq!(collapse_ws(b"a  b   c"), b"a b c");
    }

    #[test]
    fn trim_both_ends() {
        assert_eq!(trim(b"  x  "), b"x");
        assert_eq!(trim(b"x"), b"x");
        assert_eq!(trim(b""), b"");
        assert_eq!(trim(b" \t\n"), b"");
    }
}
