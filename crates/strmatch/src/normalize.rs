//! Small byte-string normalization helpers.
//!
//! NTI "makes allowance for common and small string transformations
//! performed by an application, such as stripping whitespace and performing
//! case-conversions" (§III-A). The approximate matcher already absorbs small
//! edits; these helpers let the NTI configuration additionally normalize
//! case and whitespace before matching.

use crate::swar;
use std::borrow::Cow;

/// ASCII-lowercases a byte string, borrowing when no byte needs changing.
///
/// Inputs and queries on the NTI hot path are overwhelmingly already
/// lowercase (numeric ids, slugs, lowercased SQL), so the common case
/// allocates nothing: the input is scanned eight bytes per word
/// ([`swar::first_ascii_upper`]) and returned as [`Cow::Borrowed`] unless
/// an uppercase ASCII byte is found; only then is an owned, folded copy
/// built ([`swar::fold_lower_into`]).
///
/// # UTF-8 / multi-byte passthrough
///
/// Only the 26 bytes `A..=Z` are rewritten. Every other byte — including
/// all bytes `≥ 0x80`, i.e. every byte of every multi-byte UTF-8
/// sequence — passes through **unchanged**, so valid UTF-8 stays valid
/// and non-ASCII letters keep their case. This mirrors PHP
/// `strtolower`'s byte-wise C-locale behaviour, which is what the
/// applications NTI models actually call.
///
/// # Examples
///
/// ```
/// use std::borrow::Cow;
/// use joza_strmatch::normalize::to_lower;
///
/// assert_eq!(to_lower(b"SeLeCt * FROM T").as_ref(), b"select * from t");
/// assert!(matches!(to_lower(b"already lower 1=1"), Cow::Borrowed(_)));
/// // Multi-byte UTF-8 passes through byte-for-byte: only ASCII folds.
/// assert_eq!(to_lower("Ärger OR 1=1".as_bytes()).as_ref(), "Ärger or 1=1".as_bytes());
/// ```
pub fn to_lower(s: &[u8]) -> Cow<'_, [u8]> {
    match swar::first_ascii_upper(s) {
        None => Cow::Borrowed(s),
        Some(first) => {
            let mut out = Vec::with_capacity(s.len());
            out.extend_from_slice(&s[..first]);
            swar::fold_lower_into(&s[first..], &mut out);
            Cow::Owned(out)
        }
    }
}

/// Appends the ASCII-lowercased copy of `s` to `out` without allocating
/// beyond `out`'s own growth — the arena-scratch flavour of [`to_lower`]
/// used on the per-check path where the destination buffer is recycled
/// across checks. Same byte-wise semantics, including the UTF-8
/// passthrough guarantee.
pub fn to_lower_into(s: &[u8], out: &mut Vec<u8>) {
    swar::fold_lower_into(s, out);
}

/// Collapses runs of ASCII whitespace to a single space and trims the ends.
///
/// # Examples
///
/// ```
/// use joza_strmatch::normalize::collapse_ws;
///
/// assert_eq!(collapse_ws(b"  a \t b\n"), b"a b");
/// ```
pub fn collapse_ws(s: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.len());
    let mut in_ws = true; // leading whitespace is dropped
    for &b in s {
        if b.is_ascii_whitespace() {
            if !in_ws {
                out.push(b' ');
                in_ws = true;
            }
        } else {
            out.push(b);
            in_ws = false;
        }
    }
    if out.last() == Some(&b' ') {
        out.pop();
    }
    out
}

/// Trims ASCII whitespace from both ends (PHP `trim` on default charlist).
pub fn trim(s: &[u8]) -> &[u8] {
    let start = s.iter().position(|b| !b.is_ascii_whitespace()).unwrap_or(s.len());
    let end = s.iter().rposition(|b| !b.is_ascii_whitespace()).map_or(start, |i| i + 1);
    &s[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_passes_non_ascii() {
        assert_eq!(to_lower("ÄB".as_bytes()).as_ref(), "Äb".as_bytes());
        // Every byte ≥ 0x80 must survive untouched, even mid-word and in
        // words mixed with ASCII uppercase.
        let mixed = "ÀÉÎÕÜ WHERE ÿ".as_bytes();
        let folded = to_lower(mixed);
        assert_eq!(folded.as_ref(), "ÀÉÎÕÜ where ÿ".as_bytes());
        assert!(std::str::from_utf8(folded.as_ref()).is_ok());
    }

    #[test]
    fn lower_into_matches_cow_flavor() {
        for s in [&b"SeLeCt 1"[..], b"", b"plain", "Ä Z ä".as_bytes()] {
            let mut out = Vec::new();
            to_lower_into(s, &mut out);
            assert_eq!(out.as_slice(), to_lower(s).as_ref());
        }
    }

    #[test]
    fn lower_borrows_when_already_lower() {
        assert!(matches!(to_lower(b"select * from t"), Cow::Borrowed(_)));
        assert!(matches!(to_lower(b""), Cow::Borrowed(_)));
        assert!(matches!(to_lower("ä 1=1 -- ".as_bytes()), Cow::Borrowed(_)));
        assert!(matches!(to_lower(b"x WHERE y"), Cow::Owned(_)));
    }

    #[test]
    fn collapse_empty() {
        assert_eq!(collapse_ws(b""), b"");
        assert_eq!(collapse_ws(b"   "), b"");
    }

    #[test]
    fn collapse_interior() {
        assert_eq!(collapse_ws(b"a  b   c"), b"a b c");
    }

    #[test]
    fn trim_both_ends() {
        assert_eq!(trim(b"  x  "), b"x");
        assert_eq!(trim(b"x"), b"x");
        assert_eq!(trim(b""), b"");
        assert_eq!(trim(b" \t\n"), b"");
    }
}
