//! Levenshtein edit distance.
//!
//! The paper's NTI component uses PHP's built-in `levenshtein` for short
//! strings and a linear-memory variant for long strings (§VI-B). Both are
//! reproduced here, plus a banded early-exit variant used when the caller
//! only cares whether the distance is below a cutoff.

/// Computes the Levenshtein edit distance between `a` and `b` using the
/// classic two-row dynamic program (linear memory, `O(|a|·|b|)` time).
///
/// Insertions, deletions and substitutions all cost 1.
///
/// # Examples
///
/// ```
/// use joza_strmatch::levenshtein::distance;
///
/// assert_eq!(distance(b"kitten", b"sitting"), 3);
/// assert_eq!(distance(b"", b"abc"), 3);
/// assert_eq!(distance(b"same", b"same"), 0);
/// ```
pub fn distance(a: &[u8], b: &[u8]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Iterate over the shorter string in the inner loop to minimize memory.
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut prev: Vec<usize> = (0..=inner.len()).collect();
    let mut cur: Vec<usize> = vec![0; inner.len() + 1];
    for (i, &oc) in outer.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &ic) in inner.iter().enumerate() {
            let sub = prev[j] + usize::from(oc != ic);
            let del = prev[j + 1] + 1;
            let ins = cur[j] + 1;
            cur[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[inner.len()]
}

/// Computes the Levenshtein distance between `a` and `b`, giving up early.
///
/// Returns `Some(d)` if the distance `d` is at most `cutoff`, and `None`
/// otherwise. Uses Ukkonen's banded dynamic program: only a diagonal band of
/// width `2·cutoff + 1` is evaluated, so the cost is `O(cutoff · min(|a|,
/// |b|))` — much cheaper than [`distance`] for small cutoffs.
///
/// # Examples
///
/// ```
/// use joza_strmatch::levenshtein::bounded_distance;
///
/// assert_eq!(bounded_distance(b"kitten", b"sitting", 3), Some(3));
/// assert_eq!(bounded_distance(b"kitten", b"sitting", 2), None);
/// ```
pub fn bounded_distance(a: &[u8], b: &[u8], cutoff: usize) -> Option<usize> {
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (n, m) = (a.len(), b.len());
    if m - n > cutoff {
        return None;
    }
    if n == 0 {
        return Some(m);
    }
    const BIG: usize = usize::MAX / 2;
    // Row over positions of `b` (the longer string), banded around the
    // diagonal. prev[j] = distance for prefix a[..i], b[..j].
    let mut prev = vec![BIG; m + 1];
    let mut cur = vec![BIG; m + 1];
    for (j, slot) in prev.iter_mut().enumerate().take(cutoff.min(m) + 1) {
        *slot = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(cutoff);
        let hi = (i + cutoff).min(m);
        cur[lo.saturating_sub(1)] = BIG;
        let mut row_min = BIG;
        for j in lo.max(1)..=hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = if prev[j] < BIG { prev[j] + 1 } else { BIG };
            let ins = if j > lo.max(1) || (lo == 0 && j == 1) {
                cur[j - 1].saturating_add(1)
            } else {
                BIG
            };
            let best = sub.min(del).min(ins);
            cur[j] = best;
            row_min = row_min.min(best);
        }
        if lo == 0 {
            cur[0] = i;
            row_min = row_min.min(i);
        }
        if row_min > cutoff {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
        // Clear stale cells outside the next band.
        for slot in cur.iter_mut() {
            *slot = BIG;
        }
    }
    let d = prev[m];
    (d <= cutoff).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_vs_empty() {
        assert_eq!(distance(b"", b""), 0);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(distance(b"", b"abc"), 3);
        assert_eq!(distance(b"abc", b""), 3);
    }

    #[test]
    fn identical() {
        assert_eq!(distance(b"SELECT * FROM t", b"SELECT * FROM t"), 0);
    }

    #[test]
    fn single_substitution() {
        assert_eq!(distance(b"cat", b"car"), 1);
    }

    #[test]
    fn single_insertion() {
        assert_eq!(distance(b"cat", b"cart"), 1);
    }

    #[test]
    fn single_deletion() {
        assert_eq!(distance(b"cart", b"cat"), 1);
    }

    #[test]
    fn classic_kitten() {
        assert_eq!(distance(b"kitten", b"sitting"), 3);
    }

    #[test]
    fn symmetric() {
        assert_eq!(distance(b"abcdef", b"azced"), distance(b"azced", b"abcdef"));
    }

    #[test]
    fn magic_quotes_example() {
        // The paper's Fig. 2C scenario: magic quotes add one backslash per
        // quote, so the distance equals the number of quotes in the input.
        let input = "-1' OR '1'='1' OR '1'='1";
        let escaped = input.replace('\'', "\\'");
        let quotes = input.matches('\'').count();
        assert_eq!(distance(input.as_bytes(), escaped.as_bytes()), quotes);
    }

    #[test]
    fn bounded_matches_unbounded_when_within() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"kitten", b"sitting"),
            (b"", b"abc"),
            (b"same", b"same"),
            (b"a", b"b"),
            (b"SELECT", b"SELEKT"),
        ];
        for &(a, b) in cases {
            let d = distance(a, b);
            assert_eq!(bounded_distance(a, b, d), Some(d), "{a:?} vs {b:?}");
            assert_eq!(bounded_distance(a, b, d + 2), Some(d));
            if d > 0 {
                assert_eq!(bounded_distance(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_rejects_length_gap() {
        assert_eq!(bounded_distance(b"ab", b"abcdefgh", 3), None);
    }

    #[test]
    fn bounded_zero_cutoff() {
        assert_eq!(bounded_distance(b"abc", b"abc", 0), Some(0));
        assert_eq!(bounded_distance(b"abc", b"abd", 0), None);
    }
}
