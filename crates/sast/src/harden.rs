//! Static parameterization: rewrite modeled sinks into prepared calls.
//!
//! PR 4's query-model inference proves, per sink site, that every query
//! the site can emit has the shape `Lit Hole Lit …` — statically known
//! SQL text with dynamic scalars confined to data-literal positions.
//! That proof is exactly the licence to *repair* the site (ASSIST; "You
//! shall not pass"): replace the string-concatenation sink with a
//! prepared-statement call whose text is the literal skeleton and whose
//! parameters are the original dynamic subexpressions.
//!
//! The pass re-interprets each route's AST with a **pieces domain**: a
//! variable is either `Scalar` (holds a dynamic value usable as one bound
//! parameter), `Inline` (holds a known concatenation of literal text and
//! pure dynamic pieces, which the sink rewrite may inline), or `Opaque`
//! (not safely expressible — the route is skipped with a reason). At each
//! sink, the query argument decomposes into literal/dynamic pieces; a
//! quote-context scan then assembles the prepared text:
//!
//! * a dynamic piece *outside* SQL quotes becomes a `:jzN` placeholder
//!   bound to `strval(piece)` — `strval` mirrors the string conversion
//!   PHP concatenation would have applied (arrays become `"Array"`, so
//!   Drupal-style array inputs can never reach `db_query`'s placeholder
//!   expansion through a binding);
//! * a quoted region containing dynamic pieces is replaced *entirely*
//!   (quotes included) by one placeholder bound to
//!   `strval(stripslashes(region))` — the SQL lexer would have unescaped
//!   the region's text, and `stripslashes` agrees with SQL unescaping on
//!   the `addslashes` escape set (`\'`, `\"`, `\\`, `\0`), which is the
//!   only escape alphabet the magic-quotes pipeline produces;
//! * a quoted region with no dynamic pieces stays in the text verbatim.
//!
//! The assembled text must parse as SQL (placeholders included); a hole
//! that lands somewhere a data literal cannot go — a table name, a
//! column — fails the parse and skips the route. Evaluation order is
//! preserved: unmoved pieces are evaluated at the sink exactly as the
//! original concatenation did, and pieces inlined from earlier
//! assignments are required to be pure and are invalidated when any
//! variable they read is reassigned.
//!
//! The rewrite is verified *differentially* (`joza_lab`'s harden
//! driver): original and hardened applications must produce bit-identical
//! responses and database states over the benign corpus, and the hardened
//! application must neutralize every exploit targeting a rewritten route.

use crate::querymodel::infer_source;
use joza_phpsim::ast::{AssignOp, Expr, InterpPart, Stmt};
use joza_phpsim::emit::emit_program;
use joza_phpsim::parser::parse_program;
use joza_phpsim::value::PValue;
use joza_sqlparse::parser::parse as parse_sql;
use joza_webapp::app::WebApp;
use std::collections::{BTreeMap, BTreeSet};

/// Why a route was left unrewritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The source does not parse; there is no AST to rewrite.
    ParseError,
    /// The query model left at least one sink unmodeled (⊤): the pass has
    /// no proof that dynamic input is confined to data positions.
    IncompleteModel,
    /// The sink is already a parameterized `db_query($sql, $args)` call.
    /// Its runtime placeholder expansion (Drupal 7 `expandArguments`
    /// splices array *keys* into the statement text — CVE-2014-3704) is
    /// not derivable from the call site, so the model is incomplete and
    /// there is no concatenation to rewrite.
    AlreadyPrepared,
    /// A sink consumes a variable whose construction the pieces domain
    /// cannot express (joined branches, smashed arrays, self-referential
    /// appends).
    UnresolvedQueryExpr,
    /// Inlining an earlier assignment would move an impure expression
    /// (result fetch, clock, RNG) across statements.
    ImpureBinding,
    /// The query text is accumulated across loop iterations; a static
    /// template cannot bound the number of parameters.
    LoopCarriedFragment,
    /// A SQL string literal opens in one piece and never closes.
    UnbalancedQuote,
    /// A placeholder would land where SQL does not accept a data literal
    /// (the prepared text does not parse).
    HoleNotParamPosition,
}

impl SkipReason {
    /// Stable machine-readable code for reports.
    pub fn code(&self) -> &'static str {
        match self {
            SkipReason::ParseError => "parse-error",
            SkipReason::IncompleteModel => "incomplete-model",
            SkipReason::AlreadyPrepared => "already-prepared",
            SkipReason::UnresolvedQueryExpr => "unresolved-query-expr",
            SkipReason::ImpureBinding => "impure-binding",
            SkipReason::LoopCarriedFragment => "loop-carried-fragment",
            SkipReason::UnbalancedQuote => "unbalanced-quote",
            SkipReason::HoleNotParamPosition => "hole-not-param-position",
        }
    }

    /// One-line human explanation for reports.
    pub fn detail(&self) -> &'static str {
        match self {
            SkipReason::ParseError => "source does not parse",
            SkipReason::IncompleteModel => "query model has an unmodeled (top) sink site",
            SkipReason::AlreadyPrepared => {
                "sink already uses db_query placeholders; its expandArguments array-key \
                 splice (CVE-2014-3704) is not derivable from the call site"
            }
            SkipReason::UnresolvedQueryExpr => {
                "query construction not expressible in the pieces domain"
            }
            SkipReason::ImpureBinding => {
                "binding would move an impure expression across statements"
            }
            SkipReason::LoopCarriedFragment => "query text accumulated across loop iterations",
            SkipReason::UnbalancedQuote => "SQL string literal never closes",
            SkipReason::HoleNotParamPosition => {
                "prepared text does not parse: a hole sits where SQL allows no data literal"
            }
        }
    }
}

/// Per-route hardening outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteHarden {
    /// Route slug.
    pub route: String,
    /// Sink call sites found in the route.
    pub sinks: usize,
    /// Sink call sites rewritten to prepared form (all of them, when the
    /// route is rewritten).
    pub sinks_rewritten: usize,
    /// Total placeholders bound across the route's rewritten sinks.
    pub placeholders: usize,
    /// Why the route was skipped; `None` means rewritten.
    pub skip: Option<SkipReason>,
}

impl RouteHarden {
    /// True when every sink on the route was rewritten.
    pub fn rewritten(&self) -> bool {
        self.skip.is_none()
    }
}

/// Machine-readable result of [`harden_app`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HardenReport {
    /// Per-route outcomes in route order.
    pub routes: Vec<RouteHarden>,
}

impl HardenReport {
    /// Routes that were fully rewritten, in route order.
    pub fn rewritten_routes(&self) -> Vec<String> {
        self.routes.iter().filter(|r| r.rewritten()).map(|r| r.route.clone()).collect()
    }

    /// Number of rewritten routes.
    pub fn rewritten_count(&self) -> usize {
        self.routes.iter().filter(|r| r.rewritten()).count()
    }
}

/// One lint finding: a sink that consumes tainted input without a
/// complete query model — the hardening pass's residual worklist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnparameterizedSink {
    /// Route slug.
    pub route: String,
    /// Preorder statement id of the sink call.
    pub stmt_id: usize,
    /// Sink builtin name.
    pub sink: String,
    /// Taint sources reaching the sink.
    pub sources: Vec<String>,
    /// For second-order findings: the attacker-reachable `(table,
    /// column)` cell this sink writes raw input into — the plant half of
    /// a stored-injection chain. `None` for first-order unmodeled-sink
    /// findings.
    pub dirty_cell: Option<(String, String)>,
}

/// Lints an application for tainted sinks the hardening pass cannot
/// repair: taint findings whose sink site the query model left unmodeled,
/// plus raw-input writes into attacker-reachable cells (the plant sites
/// of the cross-route store/load fixpoint — parameterizing the write does
/// not stop the stored payload, so each needs escape-on-read or a schema
/// change at the reading routes). Every entry is one item of the
/// remaining manual-remediation worklist.
pub fn unparameterized_sink_lint(app: &WebApp) -> Vec<UnparameterizedSink> {
    let mut out = Vec::new();
    for summary in crate::analyze_app(app) {
        let plugin = match app.plugin(&summary.endpoint) {
            Some(p) => p,
            None => continue,
        };
        let model = infer_source(&summary.endpoint, &plugin.source);
        let unmodeled: BTreeSet<usize> =
            model.sites.iter().filter(|s| s.templates.is_none()).map(|s| s.stmt_id).collect();
        if model.parse_error {
            continue;
        }
        for f in &summary.findings {
            if f.taint != crate::Taint::Untainted && unmodeled.contains(&f.stmt_id) {
                out.push(UnparameterizedSink {
                    route: summary.endpoint.clone(),
                    stmt_id: f.stmt_id,
                    sink: f.sink.clone(),
                    sources: f.sources.clone(),
                    dirty_cell: None,
                });
            }
        }
    }
    // Second-order plants: every tainted write into a cell some
    // second-order-reachable route reads back. One entry per (write,
    // cell) — the per-cell view is `StoreFlowReport::remediation_worklist`.
    let flow = crate::analyze_store_flow(app);
    for entry in flow.remediation_worklist() {
        if entry.readers.is_empty() {
            continue;
        }
        for w in &entry.writers {
            let duplicate = out.iter().any(|s: &UnparameterizedSink| {
                s.route == w.route
                    && s.stmt_id == w.stmt_id
                    && s.dirty_cell.as_ref() == Some(&entry.cell)
            });
            if !duplicate {
                out.push(UnparameterizedSink {
                    route: w.route.clone(),
                    stmt_id: w.stmt_id,
                    sink: w.sink.clone(),
                    sources: w.sources.clone(),
                    dirty_cell: Some(entry.cell.clone()),
                });
            }
        }
    }
    out
}

/// Hardens one route's source: every sink rewritten to a prepared
/// `db_query` call, or a skip reason. On success the returned source is
/// guaranteed to re-parse (`parse(emit(ast))` is asserted).
pub fn harden_source(route: &str, src: &str) -> (RouteHarden, Option<String>) {
    let mut report = RouteHarden {
        route: route.to_string(),
        sinks: 0,
        sinks_rewritten: 0,
        placeholders: 0,
        skip: None,
    };

    let mut prog = match parse_program(src) {
        Ok(p) => p,
        Err(_) => {
            report.skip = Some(SkipReason::ParseError);
            return (report, None);
        }
    };

    // Gate on the inference pass: only routes whose model is complete
    // carry the proof that every dynamic input is a data-literal hole.
    let model = infer_source(route, src);
    report.sinks = model.sites.len();
    if model.sites.iter().any(|s| s.templates.is_none()) {
        report.skip = Some(if has_prepared_db_query(&prog) {
            SkipReason::AlreadyPrepared
        } else {
            SkipReason::IncompleteModel
        });
        return (report, None);
    }

    let mut rw = Rewriter { failure: None, sinks: 0, rewritten: 0, placeholders: 0 };
    let mut env = Env::new();
    rw.walk_block(&mut prog, &mut env);
    report.sinks = rw.sinks;
    if let Some(reason) = rw.failure {
        report.skip = Some(reason);
        return (report, None);
    }
    report.sinks_rewritten = rw.rewritten;
    report.placeholders = rw.placeholders;

    let emitted = emit_program(&prog);
    let reparsed = parse_program(&emitted).expect("emitted hardened source must parse");
    assert_eq!(reparsed, prog, "emitter round-trip broke on hardened {route}");
    (report, Some(emitted))
}

/// Hardens every routable endpoint of an application. Returns the
/// transformed application (skipped routes keep their original source)
/// and the per-route report, sorted by route.
pub fn harden_app(app: &WebApp) -> (WebApp, HardenReport) {
    let mut hardened = app.clone();
    let mut slugs: Vec<(String, String)> =
        app.plugins().map(|p| (p.name.clone(), p.source.clone())).collect();
    slugs.sort();
    let mut report = HardenReport::default();
    for (slug, source) in slugs {
        let (route_report, new_source) = harden_source(&slug, &source);
        if let Some(src) = new_source {
            hardened.set_plugin_source(&slug, &src);
        }
        report.routes.push(route_report);
    }
    (hardened, report)
}

// ---------------------------------------------------------------------
// The pieces domain.
// ---------------------------------------------------------------------

/// One constituent of a query under construction.
#[derive(Debug, Clone, PartialEq)]
enum Piece {
    /// Statically known text (string conversion already applied).
    Lit(String),
    /// A dynamic subexpression. `hoisted` pieces were captured from an
    /// earlier assignment and will be re-evaluated at the sink — they
    /// must be pure, and are invalidated if any variable they read is
    /// reassigned before use.
    Dyn { expr: Expr, hoisted: bool },
}

/// What the rewriter knows about a variable.
#[derive(Debug, Clone, PartialEq)]
enum Entry {
    /// Holds a dynamic value; usable as a single bound parameter
    /// (`$v` re-read at the sink is always the runtime value).
    Scalar,
    /// Holds a known concatenation with literal text; the sink rewrite
    /// inlines these pieces so the literals join the SQL skeleton.
    Inline(Vec<Piece>),
    /// Not safely expressible; using it at a sink skips the route.
    Opaque(SkipReason),
}

type Env = BTreeMap<String, Entry>;

const SOURCE_SUPERGLOBALS: &[&str] = &["_GET", "_POST", "_COOKIE", "_REQUEST", "_SERVER"];

/// Builtins safe to re-evaluate at the sink: deterministic in their
/// arguments and free of side effects. Result-set readers (`mysql_fetch_*`),
/// clocks, and RNGs are deliberately absent.
const PURE_FNS: &[&str] = &[
    "trim",
    "intval",
    "strval",
    "absint",
    "abs",
    "floatval",
    "doubleval",
    "strlen",
    "strtolower",
    "strtoupper",
    "stripslashes",
    "addslashes",
    "base64_decode",
    "base64_encode",
    "urldecode",
    "rawurldecode",
    "urlencode",
    "str_replace",
    "sprintf",
    "vsprintf",
    "implode",
    "join",
    "md5",
    "number_format",
    "is_numeric",
    "is_array",
    "is_string",
    "count",
    "sizeof",
    "htmlspecialchars",
    "esc_sql",
    "esc_html",
    "esc_attr",
    "mysql_real_escape_string",
    "mysqli_real_escape_string",
    "real_escape_string",
    "preg_replace",
    "preg_match",
    "substr",
];

fn is_pure(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Interp(_) => true,
        Expr::Index { base, index } => is_pure(base) && is_pure(index),
        Expr::Unary { expr, .. } => is_pure(expr),
        Expr::Binary { left, right, .. } => is_pure(left) && is_pure(right),
        Expr::Ternary { cond, then_val, else_val } => {
            is_pure(cond) && then_val.as_deref().is_none_or(is_pure) && is_pure(else_val)
        }
        Expr::ArrayLit(items) => {
            items.iter().all(|(k, v)| k.as_ref().is_none_or(is_pure) && is_pure(v))
        }
        Expr::Isset(args) => args.iter().all(is_pure),
        Expr::Empty(e) => is_pure(e),
        Expr::AssignExpr { .. } => false,
        Expr::Call { name, args } => {
            PURE_FNS.contains(&name.to_ascii_lowercase().as_str()) && args.iter().all(is_pure)
        }
    }
}

/// Variables an expression reads (hoisting validity tracking).
fn free_vars(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Lit(_) => {}
        Expr::Var(name) => {
            out.insert(name.clone());
        }
        Expr::Interp(parts) => {
            for p in parts {
                if let InterpPart::Var(name) = p {
                    out.insert(name.clone());
                }
            }
        }
        Expr::Index { base, index } => {
            free_vars(base, out);
            free_vars(index, out);
        }
        Expr::Call { args, .. } | Expr::Isset(args) => {
            for a in args {
                free_vars(a, out);
            }
        }
        Expr::Unary { expr, .. } | Expr::Empty(expr) => free_vars(expr, out),
        Expr::Binary { left, right, .. } => {
            free_vars(left, out);
            free_vars(right, out);
        }
        Expr::Ternary { cond, then_val, else_val } => {
            free_vars(cond, out);
            if let Some(t) = then_val {
                free_vars(t, out);
            }
            free_vars(else_val, out);
        }
        Expr::ArrayLit(items) => {
            for (k, v) in items {
                if let Some(k) = k {
                    free_vars(k, out);
                }
                free_vars(v, out);
            }
        }
        Expr::AssignExpr { var, expr } => {
            out.insert(var.clone());
            free_vars(expr, out);
        }
    }
}

/// Variables assigned anywhere in a statement (loop-entry invalidation).
fn assigned_vars_stmt(stmt: &Stmt, out: &mut BTreeSet<String>) {
    match stmt {
        Stmt::Expr(e) | Stmt::Return(Some(e)) | Stmt::Exit(Some(e)) => assigned_vars_expr(e, out),
        Stmt::Assign { var, indices, expr, .. } => {
            out.insert(var.clone());
            for idx in indices.iter().flatten() {
                assigned_vars_expr(idx, out);
            }
            assigned_vars_expr(expr, out);
        }
        Stmt::If { cond, then_branch, else_branch } => {
            assigned_vars_expr(cond, out);
            for s in then_branch.iter().chain(else_branch) {
                assigned_vars_stmt(s, out);
            }
        }
        Stmt::While { cond, body } => {
            assigned_vars_expr(cond, out);
            for s in body {
                assigned_vars_stmt(s, out);
            }
        }
        Stmt::Foreach { array, key_var, val_var, body } => {
            assigned_vars_expr(array, out);
            if let Some(k) = key_var {
                out.insert(k.clone());
            }
            out.insert(val_var.clone());
            for s in body {
                assigned_vars_stmt(s, out);
            }
        }
        Stmt::Echo(exprs) => {
            for e in exprs {
                assigned_vars_expr(e, out);
            }
        }
        Stmt::Return(None) | Stmt::Exit(None) | Stmt::Break | Stmt::Continue => {}
    }
}

fn assigned_vars_expr(e: &Expr, out: &mut BTreeSet<String>) {
    if let Expr::AssignExpr { var, expr } = e {
        out.insert(var.clone());
        assigned_vars_expr(expr, out);
        return;
    }
    match e {
        Expr::Index { base, index } => {
            assigned_vars_expr(base, out);
            assigned_vars_expr(index, out);
        }
        Expr::Call { args, .. } | Expr::Isset(args) => {
            for a in args {
                assigned_vars_expr(a, out);
            }
        }
        Expr::Unary { expr, .. } | Expr::Empty(expr) => assigned_vars_expr(expr, out),
        Expr::Binary { left, right, .. } => {
            assigned_vars_expr(left, out);
            assigned_vars_expr(right, out);
        }
        Expr::Ternary { cond, then_val, else_val } => {
            assigned_vars_expr(cond, out);
            if let Some(t) = then_val {
                assigned_vars_expr(t, out);
            }
            assigned_vars_expr(else_val, out);
        }
        Expr::ArrayLit(items) => {
            for (k, v) in items {
                if let Some(k) = k {
                    assigned_vars_expr(k, out);
                }
                assigned_vars_expr(v, out);
            }
        }
        Expr::Interp(_) | Expr::Lit(_) | Expr::Var(_) | Expr::AssignExpr { .. } => {}
    }
}

fn is_sink_name(name: &str) -> bool {
    crate::summaries::is_sink(&name.to_ascii_lowercase())
}

fn has_prepared_db_query(prog: &[Stmt]) -> bool {
    fn in_expr(e: &Expr) -> bool {
        match e {
            Expr::Call { name, args } => {
                (name.eq_ignore_ascii_case("db_query") && args.len() >= 2)
                    || args.iter().any(in_expr)
            }
            Expr::Index { base, index } => in_expr(base) || in_expr(index),
            Expr::Unary { expr, .. } | Expr::Empty(expr) => in_expr(expr),
            Expr::Binary { left, right, .. } => in_expr(left) || in_expr(right),
            Expr::Ternary { cond, then_val, else_val } => {
                in_expr(cond) || then_val.as_deref().is_some_and(in_expr) || in_expr(else_val)
            }
            Expr::ArrayLit(items) => {
                items.iter().any(|(k, v)| k.as_ref().is_some_and(in_expr) || in_expr(v))
            }
            Expr::Isset(args) => args.iter().any(in_expr),
            Expr::AssignExpr { expr, .. } => in_expr(expr),
            Expr::Lit(_) | Expr::Var(_) | Expr::Interp(_) => false,
        }
    }
    fn in_stmt(s: &Stmt) -> bool {
        match s {
            Stmt::Expr(e) | Stmt::Return(Some(e)) | Stmt::Exit(Some(e)) => in_expr(e),
            Stmt::Assign { indices, expr, .. } => {
                indices.iter().flatten().any(in_expr) || in_expr(expr)
            }
            Stmt::If { cond, then_branch, else_branch } => {
                in_expr(cond) || then_branch.iter().any(in_stmt) || else_branch.iter().any(in_stmt)
            }
            Stmt::While { cond, body } => in_expr(cond) || body.iter().any(in_stmt),
            Stmt::Foreach { array, body, .. } => in_expr(array) || body.iter().any(in_stmt),
            Stmt::Echo(exprs) => exprs.iter().any(in_expr),
            Stmt::Return(None) | Stmt::Exit(None) | Stmt::Break | Stmt::Continue => false,
        }
    }
    prog.iter().any(in_stmt)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Exited,
}

struct Rewriter {
    failure: Option<SkipReason>,
    sinks: usize,
    rewritten: usize,
    placeholders: usize,
}

impl Rewriter {
    fn fail(&mut self, reason: SkipReason) {
        if self.failure.is_none() {
            self.failure = Some(reason);
        }
    }

    fn walk_block(&mut self, stmts: &mut [Stmt], env: &mut Env) -> Flow {
        for stmt in stmts.iter_mut() {
            if self.walk_stmt(stmt, env) == Flow::Exited {
                return Flow::Exited;
            }
        }
        Flow::Normal
    }

    fn walk_stmt(&mut self, stmt: &mut Stmt, env: &mut Env) -> Flow {
        match stmt {
            Stmt::Expr(e) => {
                self.rewrite_expr(e, env);
            }
            Stmt::Assign { var, indices, op, expr } => {
                for idx in indices.iter_mut().flatten() {
                    self.rewrite_expr(idx, env);
                }
                // Classify the *original* right-hand side before any sink
                // inside it is replaced (the classification describes the
                // runtime value either way; the original is what the
                // model pass saw).
                let entry = self.assignment_entry(var, indices, op.as_ref(), expr, env);
                self.rewrite_expr(expr, env);
                env.insert(var.clone(), entry);
                kill_references(env, var);
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.rewrite_expr(cond, env);
                let mut then_env = env.clone();
                let then_flow = self.walk_block(then_branch, &mut then_env);
                let mut else_env = env.clone();
                let else_flow = self.walk_block(else_branch, &mut else_env);
                match (then_flow, else_flow) {
                    (Flow::Normal, Flow::Normal) => *env = join_env(&then_env, &else_env),
                    (Flow::Normal, Flow::Exited) => *env = then_env,
                    (Flow::Exited, Flow::Normal) => *env = else_env,
                    (Flow::Exited, Flow::Exited) => return Flow::Exited,
                }
            }
            Stmt::While { cond, body } => {
                let mut assigned = BTreeSet::new();
                assigned_vars_expr(cond, &mut assigned);
                for s in body.iter() {
                    assigned_vars_stmt(s, &mut assigned);
                }
                let pre = env.clone();
                enter_loop(env, &assigned);
                self.rewrite_expr(cond, env);
                self.walk_block(body, env);
                exit_loop(env, &pre, &assigned);
            }
            Stmt::Foreach { array, key_var, val_var, body } => {
                self.rewrite_expr(array, env);
                let mut assigned = BTreeSet::new();
                if let Some(k) = key_var {
                    assigned.insert(k.clone());
                }
                assigned.insert(val_var.clone());
                for s in body.iter() {
                    assigned_vars_stmt(s, &mut assigned);
                }
                let pre = env.clone();
                enter_loop(env, &assigned);
                // Element and key values are runtime scalars of the
                // iterated array — single bound parameters.
                env.insert(val_var.clone(), Entry::Scalar);
                if let Some(k) = key_var {
                    env.insert(k.clone(), Entry::Scalar);
                }
                self.walk_block(body, env);
                exit_loop(env, &pre, &assigned);
            }
            Stmt::Echo(exprs) => {
                for e in exprs {
                    self.rewrite_expr(e, env);
                }
            }
            Stmt::Return(e) | Stmt::Exit(e) => {
                if let Some(e) = e {
                    self.rewrite_expr(e, env);
                }
                return Flow::Exited;
            }
            Stmt::Break | Stmt::Continue => return Flow::Exited,
        }
        Flow::Normal
    }

    /// The env entry an assignment produces.
    fn assignment_entry(
        &mut self,
        var: &str,
        indices: &[Option<Expr>],
        op: Option<&AssignOp>,
        expr: &Expr,
        env: &Env,
    ) -> Entry {
        if !indices.is_empty() {
            // Smashed array element write: the variable as a whole is no
            // longer a value the pieces domain can place.
            return Entry::Opaque(SkipReason::UnresolvedQueryExpr);
        }
        match op {
            Some(AssignOp::Add) | Some(AssignOp::Sub) => Entry::Scalar,
            Some(AssignOp::Concat) => {
                let old = match env.get(var) {
                    Some(Entry::Inline(ps)) => ps.clone(),
                    // Appending to a scalar (or unknown) would capture a
                    // self-referential value; only straight-line builds
                    // from literals are expressible.
                    _ => return Entry::Opaque(SkipReason::UnresolvedQueryExpr),
                };
                match decompose(expr, env, true) {
                    Ok(mut rhs) => {
                        let mut ps = old;
                        ps.append(&mut rhs);
                        entry_from_pieces(ps)
                    }
                    Err(r) => Entry::Opaque(r),
                }
            }
            None => match decompose(expr, env, true) {
                Ok(ps) => entry_from_pieces(ps),
                Err(r) => Entry::Opaque(r),
            },
        }
    }

    /// Recursively rewrites sinks inside an expression, updating the env
    /// for embedded assignment expressions.
    fn rewrite_expr(&mut self, e: &mut Expr, env: &mut Env) {
        let replacement = match e {
            Expr::Call { name, args } if is_sink_name(name) => {
                self.sinks += 1;
                if self.failure.is_some() {
                    return;
                }
                let lower = name.to_ascii_lowercase();
                let query_idx = match lower.as_str() {
                    "mysqli_query" if args.len() >= 2 => 1,
                    "db_query" if args.len() >= 2 => {
                        // Already parameterized (route-level gating makes
                        // this unreachable; keep the reason precise).
                        self.fail(SkipReason::AlreadyPrepared);
                        return;
                    }
                    _ => 0,
                };
                if args.is_empty() {
                    self.fail(SkipReason::UnresolvedQueryExpr);
                    return;
                }
                for (i, a) in args.iter_mut().enumerate() {
                    if i != query_idx {
                        self.rewrite_expr(a, env);
                    }
                }
                match decompose(&args[query_idx], env, false)
                    .and_then(|pieces| build_prepared(&pieces))
                {
                    Ok((text, bindings)) => {
                        self.rewritten += 1;
                        self.placeholders += bindings.len();
                        Some(prepared_call(&text, bindings))
                    }
                    Err(reason) => {
                        self.fail(reason);
                        return;
                    }
                }
            }
            Expr::AssignExpr { var, expr } => {
                let entry = match decompose(expr, env, true) {
                    Ok(ps) => entry_from_pieces(ps),
                    Err(r) => Entry::Opaque(r),
                };
                self.rewrite_expr(expr, env);
                let var = var.clone();
                env.insert(var.clone(), entry);
                kill_references(env, &var);
                None
            }
            Expr::Index { base, index } => {
                self.rewrite_expr(base, env);
                self.rewrite_expr(index, env);
                None
            }
            Expr::Call { args, .. } | Expr::Isset(args) => {
                for a in args {
                    self.rewrite_expr(a, env);
                }
                None
            }
            Expr::Unary { expr, .. } | Expr::Empty(expr) => {
                self.rewrite_expr(expr, env);
                None
            }
            Expr::Binary { left, right, .. } => {
                self.rewrite_expr(left, env);
                self.rewrite_expr(right, env);
                None
            }
            Expr::Ternary { cond, then_val, else_val } => {
                self.rewrite_expr(cond, env);
                if let Some(t) = then_val {
                    self.rewrite_expr(t, env);
                }
                self.rewrite_expr(else_val, env);
                None
            }
            Expr::ArrayLit(items) => {
                for (k, v) in items {
                    if let Some(k) = k {
                        self.rewrite_expr(k, env);
                    }
                    self.rewrite_expr(v, env);
                }
                None
            }
            Expr::Lit(_) | Expr::Var(_) | Expr::Interp(_) => None,
        };
        if let Some(new) = replacement {
            *e = new;
        }
    }
}

/// On entering a loop, every variable the loop may assign loses its
/// inline pieces: the entry state mixes pre-loop and previous-iteration
/// values.
fn enter_loop(env: &mut Env, assigned: &BTreeSet<String>) {
    for v in assigned {
        env.insert(v.clone(), Entry::Opaque(SkipReason::LoopCarriedFragment));
    }
    // Inline entries reading loop-assigned variables are stale too.
    for v in assigned {
        kill_references(env, v);
    }
}

/// On exit, a loop-assigned variable survives as `Scalar` only if it was
/// scalar-shaped both before the loop and at the end of the body walk
/// (zero and non-zero iteration paths agree); anything else is opaque.
fn exit_loop(env: &mut Env, pre: &Env, assigned: &BTreeSet<String>) {
    for v in assigned {
        let pre_scalar = matches!(pre.get(v), None | Some(Entry::Scalar));
        let post_scalar = matches!(env.get(v), Some(Entry::Scalar));
        let entry = if pre_scalar && post_scalar {
            Entry::Scalar
        } else {
            Entry::Opaque(SkipReason::LoopCarriedFragment)
        };
        env.insert(v.clone(), entry);
    }
}

/// Reassigning `var` invalidates every inline capture that reads it.
fn kill_references(env: &mut Env, var: &str) {
    let stale: Vec<String> = env
        .iter()
        .filter(|(_, entry)| match entry {
            Entry::Inline(ps) => ps.iter().any(|p| match p {
                Piece::Dyn { expr, hoisted: true } => {
                    let mut vars = BTreeSet::new();
                    free_vars(expr, &mut vars);
                    vars.contains(var)
                }
                _ => false,
            }),
            _ => false,
        })
        .map(|(k, _)| k.clone())
        .collect();
    for k in stale {
        env.insert(k, Entry::Opaque(SkipReason::UnresolvedQueryExpr));
    }
}

fn entry_from_pieces(pieces: Vec<Piece>) -> Entry {
    let has_lit = pieces.iter().any(|p| matches!(p, Piece::Lit(_)));
    if !has_lit {
        // No skeleton text: the value is one dynamic scalar; re-reading
        // the variable at the sink is always faithful.
        return Entry::Scalar;
    }
    let all_pure = pieces.iter().all(|p| match p {
        Piece::Lit(_) => true,
        Piece::Dyn { expr, .. } => is_pure(expr),
    });
    if all_pure {
        Entry::Inline(pieces)
    } else {
        Entry::Opaque(SkipReason::ImpureBinding)
    }
}

/// Decomposes an expression into pieces. `hoisted` marks dynamic pieces
/// as captured-for-later (assignment right-hand sides); at a sink the
/// directly-present subexpressions stay in place (`hoisted = false`) and
/// evaluate exactly where the original concatenation evaluated them.
fn decompose(e: &Expr, env: &Env, hoisted: bool) -> Result<Vec<Piece>, SkipReason> {
    match e {
        Expr::Lit(v) => Ok(vec![Piece::Lit(v.to_php_string())]),
        Expr::Interp(parts) => {
            let mut out = Vec::new();
            for p in parts {
                match p {
                    InterpPart::Lit(s) => out.push(Piece::Lit(s.clone())),
                    InterpPart::Var(name) => out.extend(resolve_var(name, env, hoisted)?),
                }
            }
            Ok(out)
        }
        Expr::Binary { left, op, right } if *op == joza_phpsim::ast::BinOp::Concat => {
            let mut out = decompose(left, env, hoisted)?;
            out.extend(decompose(right, env, hoisted)?);
            Ok(out)
        }
        Expr::Var(name) => resolve_var(name, env, hoisted),
        other => Ok(vec![Piece::Dyn { expr: other.clone(), hoisted }]),
    }
}

fn resolve_var(name: &str, env: &Env, hoisted: bool) -> Result<Vec<Piece>, SkipReason> {
    if SOURCE_SUPERGLOBALS.contains(&name) {
        return Ok(vec![Piece::Dyn { expr: Expr::Var(name.to_string()), hoisted }]);
    }
    match env.get(name) {
        Some(Entry::Inline(ps)) => Ok(ps.clone()),
        Some(Entry::Scalar) | None => {
            Ok(vec![Piece::Dyn { expr: Expr::Var(name.to_string()), hoisted }])
        }
        Some(Entry::Opaque(reason)) => Err(*reason),
    }
}

// ---------------------------------------------------------------------
// Prepared-text assembly.
// ---------------------------------------------------------------------

/// In-quote accumulation: the expressions whose concatenation is the
/// quoted region's *escaped* content.
enum RegionPart {
    Lit(String),
    Dyn(Expr),
}

/// Assembles the prepared statement text and its bindings from a piece
/// sequence, scanning single-quote context so dynamic pieces inside SQL
/// string literals fold into one bound parameter per quoted region.
fn build_prepared(pieces: &[Piece]) -> Result<(String, Vec<Expr>), SkipReason> {
    let mut text = String::new();
    let mut bindings: Vec<Expr> = Vec::new();
    // `None` = outside quotes; `Some(parts)` = inside a quoted region.
    let mut region: Option<Vec<RegionPart>> = None;

    let mut push_placeholder = |text: &mut String, bindings: &mut Vec<Expr>, value: Expr| {
        if text.ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
            return Err(SkipReason::HoleNotParamPosition);
        }
        text.push_str(&format!(":jz{}", bindings.len()));
        bindings.push(value);
        Ok(())
    };

    for piece in pieces {
        match piece {
            Piece::Lit(s) => {
                let mut chars = s.chars().peekable();
                while let Some(c) = chars.next() {
                    match &mut region {
                        None => {
                            if c == '\'' {
                                region = Some(Vec::new());
                            } else {
                                text.push(c);
                            }
                        }
                        Some(parts) => {
                            if c == '\\' {
                                // Escaped character stays in the region.
                                let mut lit = String::from('\\');
                                if let Some(n) = chars.next() {
                                    lit.push(n);
                                }
                                push_region_lit(parts, &lit);
                            } else if c == '\'' {
                                // Region closes.
                                let parts = region.take().expect("inside quote");
                                close_region(
                                    parts,
                                    &mut text,
                                    &mut bindings,
                                    &mut push_placeholder,
                                )?;
                            } else {
                                push_region_lit(parts, &c.to_string());
                            }
                        }
                    }
                }
            }
            Piece::Dyn { expr, .. } => match &mut region {
                None => push_placeholder(&mut text, &mut bindings, strval(expr.clone()))?,
                Some(parts) => parts.push(RegionPart::Dyn(expr.clone())),
            },
        }
    }
    if region.is_some() {
        return Err(SkipReason::UnbalancedQuote);
    }
    if parse_sql(&text).is_err() {
        return Err(SkipReason::HoleNotParamPosition);
    }
    Ok((text, bindings))
}

fn push_region_lit(parts: &mut Vec<RegionPart>, s: &str) {
    if let Some(RegionPart::Lit(prev)) = parts.last_mut() {
        prev.push_str(s);
    } else {
        parts.push(RegionPart::Lit(s.to_string()));
    }
}

/// Emits a completed quoted region: verbatim when fully static, otherwise
/// one placeholder bound to `strval(stripslashes(<region concat>))` —
/// `stripslashes` reproduces the SQL lexer's unescaping of the region
/// (the two agree on the `addslashes` escape alphabet, the only escapes
/// the magic-quotes input pipeline produces).
fn close_region(
    parts: Vec<RegionPart>,
    text: &mut String,
    bindings: &mut Vec<Expr>,
    push_placeholder: &mut impl FnMut(&mut String, &mut Vec<Expr>, Expr) -> Result<(), SkipReason>,
) -> Result<(), SkipReason> {
    let has_dyn = parts.iter().any(|p| matches!(p, RegionPart::Dyn(_)));
    if !has_dyn {
        text.push('\'');
        for p in &parts {
            if let RegionPart::Lit(s) = p {
                text.push_str(s);
            }
        }
        text.push('\'');
        return Ok(());
    }
    let exprs: Vec<Expr> = parts
        .into_iter()
        .filter_map(|p| match p {
            RegionPart::Lit(s) if s.is_empty() => None,
            RegionPart::Lit(s) => Some(Expr::Lit(PValue::Str(s))),
            RegionPart::Dyn(e) => Some(e),
        })
        .collect();
    let concat = fold_concat(exprs);
    let value = strval(call("stripslashes", vec![concat]));
    push_placeholder(text, bindings, value)
}

fn fold_concat(mut exprs: Vec<Expr>) -> Expr {
    if exprs.is_empty() {
        return Expr::Lit(PValue::Str(String::new()));
    }
    let first = exprs.remove(0);
    exprs.into_iter().fold(first, |acc, e| Expr::Binary {
        left: Box::new(acc),
        op: joza_phpsim::ast::BinOp::Concat,
        right: Box::new(e),
    })
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call { name: name.to_string(), args }
}

fn strval(e: Expr) -> Expr {
    call("strval", vec![e])
}

/// The rewritten sink: `db_query('<text>', array(':jz0' => v0, …))`.
fn prepared_call(text: &str, bindings: Vec<Expr>) -> Expr {
    let mut args = vec![Expr::Lit(PValue::Str(text.to_string()))];
    if !bindings.is_empty() {
        let entries = bindings
            .into_iter()
            .enumerate()
            .map(|(i, v)| (Some(Expr::Lit(PValue::Str(format!(":jz{i}")))), v))
            .collect();
        args.push(Expr::ArrayLit(entries));
    }
    Expr::Call { name: "db_query".to_string(), args }
}

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, va) in a {
        let joined = match b.get(k) {
            Some(vb) if va == vb => va.clone(),
            Some(Entry::Scalar) if matches!(va, Entry::Scalar) => Entry::Scalar,
            Some(_) => Entry::Opaque(SkipReason::UnresolvedQueryExpr),
            // Assigned on one path only: the other path's value is the
            // prior (unknown-here) one.
            None => match va {
                Entry::Scalar => Entry::Scalar,
                _ => Entry::Opaque(SkipReason::UnresolvedQueryExpr),
            },
        };
        out.insert(k.clone(), joined);
    }
    for (k, vb) in b {
        if !a.contains_key(k) {
            let v = match vb {
                Entry::Scalar => Entry::Scalar,
                _ => Entry::Opaque(SkipReason::UnresolvedQueryExpr),
            };
            out.insert(k.clone(), v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harden(src: &str) -> (RouteHarden, Option<String>) {
        harden_source("test", src)
    }

    #[test]
    fn numeric_concat_sink_is_parameterized() {
        let (report, out) = harden(
            r#"
            $id = $_GET['item'];
            $r = mysql_query("SELECT id, name FROM tbl WHERE id=" . $id . " AND hidden=0");
        "#,
        );
        assert!(report.rewritten(), "{report:?}");
        assert_eq!(report.sinks, 1);
        assert_eq!(report.placeholders, 1);
        let src = out.expect("rewritten source");
        assert!(
            src.contains("db_query('SELECT id, name FROM tbl WHERE id=:jz0 AND hidden=0'"),
            "{src}"
        );
        assert!(src.contains("':jz0' => strval($id)"), "{src}");
    }

    #[test]
    fn quoted_context_binds_unescaped_region() {
        let (report, out) = harden(
            r#"
            $s = trim(stripslashes($_GET['q']));
            $r = mysql_query("SELECT name FROM t WHERE hidden=0 AND name LIKE '%" . $s . "%' ORDER BY id");
        "#,
        );
        assert!(report.rewritten(), "{report:?}");
        let src = out.expect("rewritten source");
        assert!(
            src.contains("WHERE hidden=0 AND name LIKE :jz0 ORDER BY id"),
            "quoted region must collapse to one placeholder: {src}"
        );
        assert!(
            src.contains("strval(stripslashes(('%' . $s) . '%'))"),
            "binding must unescape the region: {src}"
        );
    }

    #[test]
    fn static_quoted_literals_stay_verbatim() {
        let (report, out) = harden(
            r#"
            $r = mysql_query("SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1");
        "#,
        );
        assert!(report.rewritten(), "{report:?}");
        assert_eq!(report.placeholders, 0);
        let src = out.expect("rewritten source");
        assert!(src.contains("db_query('SELECT option_value FROM wp_options WHERE option_name = \\'siteurl\\' LIMIT 1')"), "{src}");
    }

    #[test]
    fn var_indirect_sink_inlines_pieces() {
        let (report, out) = harden(
            r#"
            $zid = $_GET['zid'];
            $q = "SELECT name FROM zones WHERE hidden=0 AND cat=" . $zid;
            $r = mysql_query($q);
        "#,
        );
        assert!(report.rewritten(), "{report:?}");
        let src = out.expect("rewritten source");
        assert!(
            src.contains("db_query('SELECT name FROM zones WHERE hidden=0 AND cat=:jz0'"),
            "{src}"
        );
        assert!(src.contains("':jz0' => strval($zid)"), "{src}");
    }

    #[test]
    fn insert_with_mixed_contexts() {
        let (report, out) = harden(
            r#"
            $pid = intval($_POST['pid']);
            $author = $_POST['author'];
            $ok = mysql_query("INSERT INTO c (pid, author, approved) VALUES (" . $pid . ", '" . $author . "', '1')");
        "#,
        );
        assert!(report.rewritten(), "{report:?}");
        assert_eq!(report.placeholders, 2);
        let src = out.expect("rewritten source");
        assert!(
            src.contains("VALUES (:jz0, :jz1, \\'1\\')"),
            "static quoted literal stays, dynamic ones bind: {src}"
        );
        assert!(src.contains("':jz1' => strval(stripslashes($author))"), "{src}");
    }

    #[test]
    fn unknown_builtin_skips_with_incomplete_model() {
        let (report, out) = harden(
            r#"
            $q = build_query_somehow($_GET['x']);
            mysql_query($q);
        "#,
        );
        assert_eq!(report.skip, Some(SkipReason::IncompleteModel));
        assert!(out.is_none());
    }

    #[test]
    fn prepared_db_query_skips_as_already_prepared() {
        let (report, out) = harden(
            r#"
            $ids = $_GET['ids'];
            $r = db_query("SELECT name FROM n WHERE hidden=0 AND id IN (:ids)", array(':ids' => $ids));
        "#,
        );
        assert_eq!(report.skip, Some(SkipReason::AlreadyPrepared));
        assert!(out.is_none());
    }

    #[test]
    fn impure_inline_skips() {
        let (report, out) = harden(
            r#"
            $q = "SELECT x FROM t WHERE a=" . mysql_insert_id();
            mysql_query($q);
        "#,
        );
        // mysql_insert_id is not a known builtin => the model is ⊤ there
        // anyway; use a pure-model impure case instead: a fetch result.
        let _ = (report, out);
        let (report, out) = harden(
            r#"
            $r = mysql_query("SELECT id FROM t");
            $row = mysql_fetch_row($r);
            $q = "SELECT x FROM t WHERE a=" . mysql_error();
            mysql_query($q);
        "#,
        );
        assert_eq!(report.skip, Some(SkipReason::ImpureBinding), "{report:?}");
        assert!(out.is_none());
    }

    #[test]
    fn loop_accumulated_query_skips() {
        let (report, out) = harden(
            r#"
            $ids = $_POST['ids'];
            $frag = '';
            foreach ($ids as $v) {
                $frag = $frag . $v . ",";
            }
            mysql_query("SELECT * FROM t WHERE id IN (" . $frag . "0)");
        "#,
        );
        assert_eq!(report.skip, Some(SkipReason::LoopCarriedFragment), "{report:?}");
        assert!(out.is_none());
    }

    #[test]
    fn sink_inside_fetch_loop_is_rewritten() {
        let (report, out) = harden(
            r#"
            $posts = mysql_query("SELECT ID FROM p WHERE s = 'x'");
            while ($post = mysql_fetch_assoc($posts)) {
                $pid = $post['ID'];
                $c = mysql_query("SELECT COUNT(*) FROM c WHERE pid = " . $pid);
            }
        "#,
        );
        assert!(report.rewritten(), "{report:?}");
        assert_eq!(report.sinks, 2);
        assert_eq!(report.sinks_rewritten, 2);
        let src = out.expect("rewritten source");
        assert!(src.contains("db_query('SELECT COUNT(*) FROM c WHERE pid = :jz0'"), "{src}");
        assert!(src.contains("':jz0' => strval($pid)"), "{src}");
    }

    #[test]
    fn foreach_value_in_quoted_position_binds() {
        let (report, out) = harden(
            r#"
            $opts = array('siteurl', 'blogname');
            foreach ($opts as $o) {
                $r = mysql_query("SELECT v FROM o WHERE k = '" . $o . "' LIMIT 1");
            }
        "#,
        );
        assert!(report.rewritten(), "{report:?}");
        let src = out.expect("rewritten source");
        assert!(src.contains("db_query('SELECT v FROM o WHERE k = :jz0 LIMIT 1'"), "{src}");
        assert!(src.contains("strval(stripslashes($o))"), "{src}");
    }

    #[test]
    fn hole_in_structural_position_skips() {
        // The model happily calls a table name a set of literals when it
        // comes from a foreach over literals — but a *dynamic* table name
        // cannot be a bound parameter. The prepared-text parse catches it.
        let (report, out) = harden(
            r#"
            $tbls = array('a', 'b');
            foreach ($tbls as $t) {
                $r = mysql_query("SELECT x FROM " . $t . " WHERE id=1");
            }
        "#,
        );
        assert_eq!(report.skip, Some(SkipReason::HoleNotParamPosition), "{report:?}");
        assert!(out.is_none());
    }

    #[test]
    fn hardened_source_reparses_and_model_stays_parseable() {
        let (_, out) = harden(
            r#"
            $id = $_GET['id'];
            $r = mysql_query("SELECT name FROM t WHERE hidden=0 AND id=" . $id);
        "#,
        );
        let src = out.expect("rewritten");
        // The hardened source must itself be analyzable.
        let prog = parse_program(&src).expect("hardened source parses");
        assert!(has_prepared_db_query(&prog), "sink now prepared: {src}");
    }

    #[test]
    fn lint_flags_tainted_unmodeled_sinks_only() {
        let mut app = WebApp::new("lint-test");
        app.add_plugin(joza_webapp::app::Plugin::new(
            "modeled",
            "1",
            r#"
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id=" . $id);
            "#,
        ));
        app.add_plugin(joza_webapp::app::Plugin::new(
            "unmodeled",
            "1",
            r#"
            $q = build_query_somehow($_GET['x']);
            mysql_query($q);
            "#,
        ));
        let lint = unparameterized_sink_lint(&app);
        assert_eq!(lint.len(), 1, "{lint:?}");
        assert_eq!(lint[0].route, "unmodeled");
        assert_eq!(lint[0].sink, "mysql_query");
        assert_eq!(lint[0].dirty_cell, None);
    }

    #[test]
    fn lint_flags_raw_input_writes_into_attacker_reachable_cells() {
        let mut app = WebApp::new("lint-so-test");
        app.add_plugin(joza_webapp::app::Plugin::new(
            "writer",
            "1",
            r#"
            $v = $_POST['v'];
            mysql_query("UPDATE prefs SET val='" . $v . "' WHERE id=1");
            "#,
        ));
        app.add_plugin(joza_webapp::app::Plugin::new(
            "reader",
            "1",
            r#"
            $r = mysql_query("SELECT val FROM prefs WHERE id=1");
            $row = mysql_fetch_row($r);
            mysql_query("SELECT * FROM stock WHERE id=" . $row[0]);
            "#,
        ));
        let lint = unparameterized_sink_lint(&app);
        let plant = lint
            .iter()
            .find(|s| s.dirty_cell.is_some())
            .expect("plant write into attacker-reachable cell not flagged");
        assert_eq!(plant.route, "writer");
        assert_eq!(plant.dirty_cell, Some(("prefs".into(), "val".into())));
        assert_eq!(plant.sink, "mysql_query");
        assert!(!plant.sources.is_empty(), "{plant:?}");
    }

    #[test]
    fn harden_app_reports_every_route() {
        let mut app = WebApp::new("app-test");
        app.add_plugin(joza_webapp::app::Plugin::new(
            "good",
            "1",
            r#"
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id=" . $id);
            "#,
        ));
        app.add_plugin(joza_webapp::app::Plugin::new(
            "bad",
            "1",
            r#"
            $q = build_query_somehow($_GET['x']);
            mysql_query($q);
            "#,
        ));
        let (hardened, report) = harden_app(&app);
        assert_eq!(report.routes.len(), 2);
        assert_eq!(report.rewritten_count(), 1);
        assert_eq!(report.rewritten_routes(), vec!["good".to_string()]);
        assert!(hardened.plugin("good").unwrap().source.contains("db_query"));
        assert_eq!(hardened.plugin("bad").unwrap().source, app.plugin("bad").unwrap().source);
    }
}
