//! Function summaries for the interpreter's builtin surface.
//!
//! Every callable in the phpsim subset is a builtin, so the
//! interprocedural layer of the analysis is a summary table: each builtin
//! is classified by how taint flows from its arguments to its return
//! value. User-defined functions (not in the subset today) would slot in
//! here as computed summaries with the same [`Effect`] vocabulary.

/// How a call transfers taint from (the join of) its arguments to its
/// return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Return value carries the arguments' taint unchanged (`trim`,
    /// `str_replace`, `sprintf`, …).
    Propagate,
    /// Escaping sanitizer: tainted input is downgraded to
    /// `MaybeTainted` — escaped but still attacker-influenced
    /// (`mysql_real_escape_string`, `addslashes`, `esc_sql`, …).
    Escape,
    /// Full sanitizer: the return value is provably attacker-free —
    /// numeric casts and other value-destroying conversions (`intval`,
    /// `md5`, `strlen`, …).
    Sanitize,
    /// Escape-reversing transform: `MaybeTainted` input is restored to
    /// `Tainted` (`stripslashes`, `urldecode`, `base64_decode` — the
    /// second-channel decodes the paper's §VI evasion cases exploit).
    Unescape,
    /// Return value is independent of the arguments (DB fetch results,
    /// clocks, RNGs, side-effect-only calls).
    Fresh,
}

/// Builtins whose argument strings are sent to the database — the
/// analysis sinks. `db_query` is Drupal's surface, where both the query
/// text and the named-args array (values *and* keys, the CVE-2014-3704
/// channel) reach the SQL layer.
pub const SINKS: &[&str] = &["mysql_query", "mysqli_query", "db_query"];

/// True when `name` (case-insensitive) is a DB sink.
pub fn is_sink(name: &str) -> bool {
    SINKS.iter().any(|s| name.eq_ignore_ascii_case(s))
}

/// Looks up the taint effect of a builtin (case-insensitive). Unknown
/// names conservatively propagate.
pub fn effect_of(name: &str) -> Effect {
    match name.to_ascii_lowercase().as_str() {
        // Escaping sanitizers: quotes survive in escaped form.
        "addslashes"
        | "magic_quotes"
        | "wp_magic_quotes"
        | "esc_sql"
        | "mysql_real_escape_string"
        | "mysqli_real_escape_string"
        | "real_escape_string"
        | "htmlspecialchars"
        | "esc_html"
        | "esc_attr" => Effect::Escape,

        // Value-destroying conversions: nothing attacker-controlled
        // survives into the result.
        "intval" | "absint" | "abs" | "floatval" | "doubleval" | "strlen" | "strpos" | "count"
        | "sizeof" | "md5" | "number_format" | "preg_match" | "in_array" | "is_array"
        | "is_numeric" | "is_string" => Effect::Sanitize,

        // Escape-reversing decodes: what magic quotes neutralized comes
        // back to life.
        "stripslashes" | "urldecode" | "rawurldecode" | "base64_decode" => Effect::Unescape,

        // Row fetches carry whatever taint the result handle carries. The
        // handle comes from a sink call, which returns `Fresh` under the
        // plain first-order config — so fetch results stay trusted there —
        // but `storeflow` re-runs the analysis with
        // `AnalyzerConfig::db_sources` marking load sites whose cells are
        // attacker-reachable, and then the handle (hence every fetched
        // row) is tainted with `db:<table>.<column>` provenance.
        "mysql_fetch_assoc" | "mysql_fetch_array" | "mysql_fetch_row" | "mysql_result" => {
            Effect::Propagate
        }

        // Results independent of arguments: row *counts* destroy attacker
        // bytes, clocks/RNGs, side-effect-only calls.
        "mysql_num_rows" | "mysqli_num_rows" | "mysql_error" | "mysqli_error" | "current_time"
        | "time" | "rand" | "mt_rand" | "error_log" | "header" | "setcookie" | "session_start"
        | "ob_start" => Effect::Fresh,

        // The sinks themselves return result handles.
        "mysql_query" | "mysqli_query" | "db_query" => Effect::Fresh,

        // String builders, explicitly: these are the constructors
        // `sast::querymodel` gives structured template summaries, and the
        // taint pass must agree they carry attacker bytes through
        // unchanged. `sprintf('%s', $x)` embeds `$x` verbatim; `implode`
        // splices every element (and the glue) into one string;
        // `str_replace` keeps whatever it does not match. None of them
        // escape anything.
        "sprintf" | "vsprintf" | "implode" | "join" | "str_replace" => Effect::Propagate,

        // Everything else — string transforms, encoders, array plumbing,
        // and unknown names — propagates conservatively. Note
        // `sanitize_text_field` (WordPress) strips tags but does NOT
        // escape for SQL: propagation is the correct, paper-relevant
        // classification.
        _ => Effect::Propagate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_spot_checks() {
        assert!(is_sink("mysql_query"));
        assert!(is_sink("MYSQL_QUERY"));
        assert!(is_sink("db_query"));
        assert!(!is_sink("intval"));
        assert_eq!(effect_of("mysql_real_escape_string"), Effect::Escape);
        assert_eq!(effect_of("intval"), Effect::Sanitize);
        assert_eq!(effect_of("stripslashes"), Effect::Unescape);
        assert_eq!(effect_of("base64_decode"), Effect::Unescape);
        assert_eq!(effect_of("mysql_fetch_assoc"), Effect::Propagate);
        assert_eq!(effect_of("mysql_num_rows"), Effect::Fresh);
        assert_eq!(effect_of("trim"), Effect::Propagate);
        assert_eq!(effect_of("sanitize_text_field"), Effect::Propagate);
        assert_eq!(effect_of("totally_unknown_fn"), Effect::Propagate);
    }

    #[test]
    fn string_builders_propagate_taint() {
        // The querymodel pass models these structurally; the taint pass
        // must classify them as pass-through so both analyses agree on
        // which call sites carry attacker bytes.
        for f in ["sprintf", "vsprintf", "implode", "join", "str_replace"] {
            assert_eq!(effect_of(f), Effect::Propagate, "{f} must propagate");
            assert!(!is_sink(f));
        }
    }
}
