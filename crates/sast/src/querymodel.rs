//! Static query-model inference: an abstract interpretation over phpsim
//! ASTs with a **string-construction domain**, producing per-sink
//! [`QueryTemplate`]s for `joza_sqlparse::template`'s skeleton automata.
//!
//! Where the taint pass ([`crate::analyzer`]) asks *"can attacker bytes
//! reach this sink?"*, this pass asks the SQLBlock/ASSIST question:
//! *"what query **shapes** can this sink emit at all?"*. The domain
//! tracks, per variable, a bounded set of templates built from:
//!
//! * [`TemplatePart::Lit`] — statically known text;
//! * [`TemplatePart::Hole`] — any dynamic scalar (request input, DB fetch
//!   result, cast/escape output). A hole claims nothing about taint —
//!   only that, if the runtime query is to match the model, the value
//!   must occupy exactly one SQL data literal;
//! * [`TemplatePart::Rep`] — loop-appended fragments, introduced by
//!   widening `old ++ δ` to `old ++ Rep(δ)` so `.=` loops reach a
//!   fixpoint (a bounded regular over-approximation of the loop).
//!
//! Sets are capped (`MAX_TEMPLATES`); anything beyond the cap, any
//! unknown builtin, and any construction the widening cannot express
//! collapses to ⊤. A ⊤ sink site leaves the whole endpoint model
//! *incomplete* — the gate then keeps the fast path off the table for
//! mismatches (no anomaly signal) but still uses whatever templates did
//! compile. Walk order, preorder statement ids, loop frames, and branch
//! joins all mirror `analyzer.rs` exactly, so both passes agree on which
//! call sites exist.

use crate::summaries::is_sink;
use joza_phpsim::ast::{AssignOp, BinOp, Expr, InterpPart, Stmt, UnaryOp};
use joza_phpsim::parser::parse_program_spanned;
use joza_phpsim::value::PValue;
use joza_sqlparse::template::{QueryModelIndex, QueryTemplate, RouteModel, TemplatePart};
use joza_webapp::app::WebApp;
use std::collections::{BTreeMap, BTreeSet};

/// Cap on the template set per abstract value; beyond this the value is ⊤.
const MAX_TEMPLATES: usize = 8;
/// Cap on parts per template; beyond this the value is ⊤.
const MAX_PARTS: usize = 64;
/// Cap on templates recorded per sink site (loop revisits accumulate).
const MAX_SITE_TEMPLATES: usize = 16;
/// Loop-widening safety bound; Rep-absorption converges far earlier.
const MAX_LOOP_ITERS: usize = 12;

/// The inferred model for one sink call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteModel {
    /// Preorder statement id of the sink call (same numbering as
    /// [`crate::Finding::stmt_id`]).
    pub stmt_id: usize,
    /// Sink builtin name, lowercased.
    pub sink: String,
    /// The legal query templates, or `None` when the construction is ⊤.
    pub templates: Option<Vec<QueryTemplate>>,
}

/// Per-endpoint inference result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointModel {
    /// Endpoint (route slug) analyzed.
    pub endpoint: String,
    /// Sink sites in (stmt id, sink) order.
    pub sites: Vec<SiteModel>,
    /// True when the source failed to parse (model unusable).
    pub parse_error: bool,
}

impl EndpointModel {
    /// Compiles this endpoint's sites into a [`RouteModel`].
    pub fn compile(&self) -> RouteModel {
        if self.parse_error {
            return RouteModel::default();
        }
        let sites: Vec<Option<Vec<QueryTemplate>>> =
            self.sites.iter().map(|s| s.templates.clone()).collect();
        RouteModel::build(&sites)
    }
}

/// Infers the query model for one endpoint's source text.
pub fn infer_source(endpoint: &str, src: &str) -> EndpointModel {
    let (prog, _spans) = match parse_program_spanned(src) {
        Ok(ok) => ok,
        Err(_) => {
            return EndpointModel {
                endpoint: endpoint.to_string(),
                sites: Vec::new(),
                parse_error: true,
            };
        }
    };
    let mut interp = ModelInterp {
        sinks: BTreeMap::new(),
        break_frames: Vec::new(),
        continue_frames: Vec::new(),
    };
    let mut env = Env::new();
    let mut next = 0usize;
    interp.eval_block(&prog, &mut env, &mut next);
    let sites = interp
        .sinks
        .into_iter()
        .map(|((stmt_id, sink), sval)| SiteModel {
            stmt_id,
            sink,
            templates: match sval {
                SVal::Top => None,
                SVal::T(set) => {
                    Some(set.into_iter().map(|parts| QueryTemplate { parts }).collect())
                }
            },
        })
        .collect();
    EndpointModel { endpoint: endpoint.to_string(), sites, parse_error: false }
}

/// Infers and compiles query models for every routable endpoint of a web
/// application — the [`QueryModelIndex`] `joza_core::JozaBuilder`
/// consumes.
pub fn app_query_models(app: &WebApp) -> QueryModelIndex {
    let mut index = QueryModelIndex::new();
    for p in app.plugins() {
        index.insert(&p.name, infer_source(&p.name, &p.source).compile());
    }
    index
}

// ---------------------------------------------------------------------
// The abstract domain.
// ---------------------------------------------------------------------

/// A bounded set of string templates, or ⊤.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SVal {
    T(BTreeSet<Vec<TemplatePart>>),
    Top,
}

impl SVal {
    fn lit(s: &str) -> SVal {
        if s.is_empty() {
            SVal::T(BTreeSet::from([vec![]]))
        } else {
            SVal::T(BTreeSet::from([vec![TemplatePart::Lit(s.to_string())]]))
        }
    }

    fn hole() -> SVal {
        SVal::T(BTreeSet::from([vec![TemplatePart::Hole]]))
    }

    fn empty() -> SVal {
        SVal::T(BTreeSet::from([vec![]]))
    }

    fn capped(set: BTreeSet<Vec<TemplatePart>>) -> SVal {
        if set.len() > MAX_TEMPLATES || set.iter().any(|t| t.len() > MAX_PARTS) {
            SVal::Top
        } else {
            SVal::T(set)
        }
    }

    fn concat(&self, other: &SVal) -> SVal {
        match (self, other) {
            (SVal::T(a), SVal::T(b)) => {
                let mut out = BTreeSet::new();
                for pa in a {
                    for pb in b {
                        let mut parts = pa.clone();
                        parts.extend(pb.iter().cloned());
                        out.insert(normalize(parts));
                    }
                }
                SVal::capped(out)
            }
            _ => SVal::Top,
        }
    }

    fn join(&self, other: &SVal) -> SVal {
        match (self, other) {
            (SVal::T(a), SVal::T(b)) => SVal::capped(a.union(b).cloned().collect()),
            _ => SVal::Top,
        }
    }

    /// True when every template is at most a single scalar — the shapes a
    /// scalar-transforming builtin (`trim`, `intval`, escapes…) maps back
    /// to a single dynamic scalar.
    fn scalarish(&self) -> bool {
        match self {
            SVal::Top => false,
            SVal::T(set) => {
                set.iter().all(|t| t.len() <= 1 && !matches!(t.first(), Some(TemplatePart::Rep(_))))
            }
        }
    }
}

impl Default for SVal {
    fn default() -> Self {
        SVal::empty()
    }
}

/// Merges adjacent `Lit`s, drops empty `Lit`s, and absorbs a `Rep(δ)`
/// immediately followed by δ back into the `Rep` — the normal form the
/// loop widening converges in.
fn normalize(parts: Vec<TemplatePart>) -> Vec<TemplatePart> {
    let mut merged: Vec<TemplatePart> = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            TemplatePart::Lit(s) if s.is_empty() => {}
            TemplatePart::Lit(s) => {
                if let Some(TemplatePart::Lit(prev)) = merged.last_mut() {
                    prev.push_str(&s);
                } else {
                    merged.push(TemplatePart::Lit(s));
                }
            }
            TemplatePart::Rep(body) => merged.push(TemplatePart::Rep(normalize(body))),
            other => merged.push(other),
        }
    }
    // Rep absorption: `Rep(δ) δ` ≡ `Rep(δ)` (one-or-more folds into
    // zero-or-more next to the original prefix, which the widening keeps).
    let mut out: Vec<TemplatePart> = Vec::with_capacity(merged.len());
    let mut i = 0;
    while i < merged.len() {
        out.push(merged[i].clone());
        if let TemplatePart::Rep(body) = &merged[i] {
            while merged.len() - (i + 1) >= body.len()
                && merged[i + 1..i + 1 + body.len()] == body[..]
            {
                i += body.len();
            }
        }
        i += 1;
    }
    out
}

/// `t` minus prefix `o`, allowing the boundary to split a `Lit`; `None`
/// when `o` is not a prefix of `t` or the remainder contains a `Rep`
/// (which would widen into a nested repetition).
fn strip_prefix(o: &[TemplatePart], t: &[TemplatePart]) -> Option<Vec<TemplatePart>> {
    let mut i = 0;
    while i < o.len() {
        match (o.get(i), t.get(i)) {
            (Some(a), Some(b)) if a == b => i += 1,
            (Some(TemplatePart::Lit(a)), Some(TemplatePart::Lit(b)))
                if i == o.len() - 1 && b.starts_with(a.as_str()) =>
            {
                let mut delta = vec![TemplatePart::Lit(b[a.len()..].to_string())];
                delta.extend(t[i + 1..].iter().cloned());
                let delta = normalize(delta);
                if contains_rep(&delta) {
                    return None;
                }
                return Some(delta);
            }
            _ => return None,
        }
    }
    let delta = normalize(t[i..].to_vec());
    if contains_rep(&delta) {
        return None;
    }
    Some(delta)
}

fn contains_rep(parts: &[TemplatePart]) -> bool {
    parts.iter().any(|p| matches!(p, TemplatePart::Rep(_)))
}

/// Loop widening: every template of `new` not already in `old` must be
/// `o ++ δ` for some `o ∈ old`; it is widened to `o ++ Rep(δ)`. Anything
/// else is ⊤.
fn widen(old: &SVal, new: &SVal) -> SVal {
    if old == new {
        return old.clone();
    }
    let (SVal::T(old_set), SVal::T(new_set)) = (old, new) else {
        return SVal::Top;
    };
    let mut out = old_set.clone();
    for t in new_set {
        if old_set.contains(t) {
            continue;
        }
        let mut widened = None;
        for o in old_set {
            if let Some(delta) = strip_prefix(o, t) {
                if delta.is_empty() {
                    widened = Some(o.clone());
                    break;
                }
                let mut w = o.clone();
                w.push(TemplatePart::Rep(delta));
                widened = Some(normalize(w));
                break;
            }
        }
        match widened {
            Some(w) => {
                out.insert(w);
            }
            None => return SVal::Top,
        }
    }
    SVal::capped(out)
}

type Env = BTreeMap<String, SVal>;

const SOURCE_SUPERGLOBALS: &[&str] = &["_GET", "_POST", "_COOKIE", "_REQUEST"];

fn is_source_superglobal(name: &str) -> bool {
    SOURCE_SUPERGLOBALS.contains(&name)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Normal,
    Exited,
}

struct ModelInterp {
    /// Sink sites keyed by (stmt id, sink name); loop re-visits join in.
    sinks: BTreeMap<(usize, String), SVal>,
    break_frames: Vec<Vec<Env>>,
    continue_frames: Vec<Vec<Env>>,
}

impl ModelInterp {
    fn eval_block(&mut self, stmts: &[Stmt], env: &mut Env, next: &mut usize) -> Flow {
        for (i, stmt) in stmts.iter().enumerate() {
            if self.eval_stmt(stmt, env, next) == Flow::Exited {
                *next += count_block(&stmts[i + 1..]);
                return Flow::Exited;
            }
        }
        Flow::Normal
    }

    fn eval_stmt(&mut self, stmt: &Stmt, env: &mut Env, next: &mut usize) -> Flow {
        let id = *next;
        *next += 1;
        match stmt {
            Stmt::Expr(e) => {
                self.eval_expr(e, env, id);
            }
            Stmt::Assign { var, indices, op, expr } => {
                for idx in indices.iter().flatten() {
                    self.eval_expr(idx, env, id);
                }
                let mut val = self.eval_expr(expr, env, id);
                match op {
                    Some(AssignOp::Concat) => {
                        let old = env.get(var).cloned().unwrap_or_default();
                        val = old.concat(&val);
                    }
                    Some(AssignOp::Add) | Some(AssignOp::Sub) => {
                        // Arithmetic yields a number: one data literal.
                        val = SVal::hole();
                    }
                    None => {}
                }
                if indices.is_empty() {
                    env.insert(var.clone(), val);
                } else {
                    // Smashed arrays: weak update, elements joined.
                    let joined = env.get(var).map_or_else(|| val.clone(), |old| old.join(&val));
                    env.insert(var.clone(), joined);
                }
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.eval_expr(cond, env, id);
                let mut then_env = env.clone();
                let then_flow = self.eval_block(then_branch, &mut then_env, next);
                let mut else_env = env.clone();
                let else_flow = self.eval_block(else_branch, &mut else_env, next);
                match (then_flow, else_flow) {
                    (Flow::Normal, Flow::Normal) => *env = join_env(&then_env, &else_env),
                    (Flow::Normal, Flow::Exited) => *env = then_env,
                    (Flow::Exited, Flow::Normal) => *env = else_env,
                    (Flow::Exited, Flow::Exited) => return Flow::Exited,
                }
            }
            Stmt::While { cond, body } => {
                self.eval_expr(cond, env, id);
                self.loop_fixpoint(body, env, next, |interp, body, env, next| {
                    interp.eval_block(body, env, next);
                });
                self.eval_expr(cond, env, id);
            }
            Stmt::Foreach { array, key_var, val_var, body } => {
                let arr = self.eval_expr(array, env, id);
                // Smashed arrays: elements take the array's own template
                // union (an array literal's values, or a hole for a
                // request-derived array).
                let elem = arr.clone();
                let kv = key_var.clone();
                let vv = val_var.clone();
                self.loop_fixpoint(body, env, next, move |interp, body, env, next| {
                    env.insert(vv.clone(), elem.clone());
                    if let Some(k) = &kv {
                        // Keys are dynamic scalars (and the CVE-2014-3704
                        // injection channel — a hole, never a literal).
                        env.insert(k.clone(), SVal::hole());
                    }
                    interp.eval_block(body, env, next);
                });
            }
            Stmt::Echo(exprs) => {
                for e in exprs {
                    self.eval_expr(e, env, id);
                }
            }
            Stmt::Return(value) | Stmt::Exit(value) => {
                if let Some(e) = value {
                    self.eval_expr(e, env, id);
                }
            }
            Stmt::Break => {
                if let Some(frame) = self.break_frames.last_mut() {
                    frame.push(env.clone());
                }
                return Flow::Exited;
            }
            Stmt::Continue => {
                if let Some(frame) = self.continue_frames.last_mut() {
                    frame.push(env.clone());
                }
                return Flow::Exited;
            }
        }
        Flow::Normal
    }

    /// Same skeleton as `analyzer::loop_fixpoint`, but the widening
    /// replaces the plain join so `.=` accumulation converges to a
    /// `Rep`-form fixpoint instead of growing forever.
    fn loop_fixpoint<F>(&mut self, body: &[Stmt], env: &mut Env, next: &mut usize, mut pass: F)
    where
        F: FnMut(&mut Self, &[Stmt], &mut Env, &mut usize),
    {
        let body_start = *next;
        let body_len = count_block(body);
        self.break_frames.push(Vec::new());
        self.continue_frames.push(Vec::new());
        for iter in 0..MAX_LOOP_ITERS {
            let mut trial = env.clone();
            let mut counter = body_start;
            pass(self, body, &mut trial, &mut counter);
            debug_assert_eq!(counter, body_start + body_len);
            for cont in self.continue_frames.last_mut().expect("loop frame").drain(..) {
                trial = join_env(&trial, &cont);
            }
            let widened = if iter + 1 == MAX_LOOP_ITERS {
                // Safety valve: force ⊤ on anything still moving.
                top_out_diff(env, &trial)
            } else {
                widen_env(env, &trial)
            };
            if widened == *env {
                break;
            }
            *env = widened;
        }
        self.continue_frames.pop();
        for broke in self.break_frames.pop().expect("loop frame") {
            *env = join_env(env, &broke);
        }
        *next = body_start + body_len;
    }

    fn eval_expr(&mut self, expr: &Expr, env: &mut Env, stmt_id: usize) -> SVal {
        match expr {
            Expr::Lit(v) => match v {
                PValue::Str(s) => SVal::lit(s),
                PValue::Int(i) => SVal::lit(&i.to_string()),
                _ => SVal::lit(&v.to_php_string()),
            },
            Expr::Var(name) => read_var(name, env),
            Expr::Interp(parts) => {
                let mut out = SVal::empty();
                for p in parts {
                    let v = match p {
                        InterpPart::Lit(s) => SVal::lit(s),
                        InterpPart::Var(name) => read_var(name, env),
                    };
                    out = out.concat(&v);
                }
                out
            }
            Expr::Index { base, index } => {
                if let Expr::Var(name) = base.as_ref() {
                    if is_source_superglobal(name) {
                        self.eval_expr(index, env, stmt_id);
                        return SVal::hole();
                    }
                }
                let b = self.eval_expr(base, env, stmt_id);
                self.eval_expr(index, env, stmt_id);
                // One element of a smashed value: scalar unless the base
                // is a known set of scalars.
                if b.scalarish() {
                    b
                } else {
                    SVal::hole()
                }
            }
            Expr::Call { name, args } => self.eval_call(name, args, env, stmt_id),
            Expr::Unary { op, expr } => {
                let v = self.eval_expr(expr, env, stmt_id);
                match op {
                    UnaryOp::Silence => v,
                    // Coerce to number/bool: a single literal.
                    UnaryOp::Not | UnaryOp::Neg => SVal::hole(),
                }
            }
            Expr::Binary { left, op, right } => {
                let l = self.eval_expr(left, env, stmt_id);
                let r = self.eval_expr(right, env, stmt_id);
                match op {
                    BinOp::Concat => l.concat(&r),
                    _ => SVal::hole(),
                }
            }
            Expr::Ternary { cond, then_val, else_val } => {
                let c = self.eval_expr(cond, env, stmt_id);
                let e = self.eval_expr(else_val, env, stmt_id);
                match then_val {
                    Some(t) => {
                        let t = self.eval_expr(t, env, stmt_id);
                        t.join(&e)
                    }
                    None => c.join(&e),
                }
            }
            Expr::ArrayLit(items) => {
                // The smashed array value is the union of its element
                // templates (what a foreach reads back out).
                let mut out = SVal::T(BTreeSet::new());
                for (k, v) in items {
                    if let Some(k) = k {
                        self.eval_expr(k, env, stmt_id);
                    }
                    let ev = self.eval_expr(v, env, stmt_id);
                    out = out.join(&ev);
                }
                if matches!(&out, SVal::T(s) if s.is_empty()) {
                    SVal::empty()
                } else {
                    out
                }
            }
            Expr::Isset(exprs) => {
                for e in exprs {
                    self.eval_expr(e, env, stmt_id);
                }
                SVal::hole()
            }
            Expr::Empty(e) => {
                self.eval_expr(e, env, stmt_id);
                SVal::hole()
            }
            Expr::AssignExpr { var, expr } => {
                let v = self.eval_expr(expr, env, stmt_id);
                env.insert(var.clone(), v.clone());
                v
            }
        }
    }

    fn eval_call(&mut self, name: &str, args: &[Expr], env: &mut Env, stmt_id: usize) -> SVal {
        let vals: Vec<SVal> = args.iter().map(|a| self.eval_expr(a, env, stmt_id)).collect();
        let lower = name.to_ascii_lowercase();
        if is_sink(&lower) {
            self.record_sink(stmt_id, &lower, &vals, args);
        }
        match lower.as_str() {
            // Structured string builders (satellite: keep in lockstep
            // with `summaries::effect_of`'s Propagate classification).
            "sprintf" | "vsprintf" => sprintf_model(vals.first(), &vals[1.min(vals.len())..]),
            "implode" | "join" => implode_model(&vals),
            "str_replace" => str_replace_model(&vals),

            // Scalar producers: casts, escapes, decodes, fetches, clocks.
            // Structure-wise they all yield one dynamic scalar as long as
            // the input was scalar-shaped.
            "intval" | "absint" | "abs" | "floatval" | "doubleval" | "strlen" | "strpos"
            | "count" | "sizeof" | "md5" | "number_format" | "preg_match" | "in_array"
            | "is_array" | "is_numeric" | "is_string" | "mysql_num_rows" | "mysqli_num_rows"
            | "time" | "rand" | "mt_rand" | "current_time" => SVal::hole(),

            "addslashes"
            | "magic_quotes"
            | "wp_magic_quotes"
            | "esc_sql"
            | "mysql_real_escape_string"
            | "mysqli_real_escape_string"
            | "real_escape_string"
            | "htmlspecialchars"
            | "esc_html"
            | "esc_attr"
            | "stripslashes"
            | "urldecode"
            | "rawurldecode"
            | "base64_decode"
            | "trim"
            | "strtolower"
            | "strtoupper" => {
                let joined = vals.iter().fold(SVal::empty(), |acc, v| acc.join(v));
                if joined.scalarish() {
                    SVal::hole()
                } else {
                    SVal::Top
                }
            }

            "mysql_fetch_assoc" | "mysql_fetch_array" | "mysql_fetch_row" | "mysql_result" => {
                SVal::hole()
            }

            // Sinks return handles; error strings are dynamic scalars.
            "mysql_query" | "mysqli_query" | "db_query" | "mysql_error" | "mysqli_error" => {
                SVal::hole()
            }

            // Side-effect-only calls.
            "error_log" | "header" | "setcookie" | "session_start" | "ob_start" => SVal::hole(),

            // Unknown builtins could build arbitrary SQL fragments: ⊤
            // keeps the endpoint model honest about completeness.
            _ => SVal::Top,
        }
    }

    fn record_sink(&mut self, stmt_id: usize, sink: &str, vals: &[SVal], args: &[Expr]) {
        let query = match sink {
            // mysqli_query($link, $sql) — legacy 1-arg shape tolerated.
            "mysqli_query" if vals.len() >= 2 => vals[1].clone(),
            // db_query with an $args array goes through placeholder
            // expansion that splices *array keys* into the statement
            // text (CVE-2014-3704): not statically modelable.
            "db_query" if args.len() >= 2 => SVal::Top,
            _ => vals.first().cloned().unwrap_or(SVal::Top),
        };
        let entry = self
            .sinks
            .entry((stmt_id, sink.to_string()))
            .or_insert_with(|| SVal::T(BTreeSet::new()));
        let joined = entry.join(&query);
        *entry = match joined {
            SVal::T(set) if set.len() > MAX_SITE_TEMPLATES => SVal::Top,
            other => other,
        };
    }
}

fn read_var(name: &str, env: &Env) -> SVal {
    if is_source_superglobal(name) {
        return SVal::hole();
    }
    env.get(name).cloned().unwrap_or_default()
}

/// `sprintf(fmt, args…)`: when the format is one static literal, expand
/// `%d`/`%s`/`%f`/`%u`/`%x` to the corresponding argument's templates
/// (scalar args become holes) and `%%` to `%`; otherwise ⊤.
fn sprintf_model(fmt: Option<&SVal>, args: &[SVal]) -> SVal {
    let Some(SVal::T(set)) = fmt else { return SVal::Top };
    if set.len() != 1 {
        return SVal::Top;
    }
    let parts = set.iter().next().expect("singleton");
    let fmt_str = match parts.as_slice() {
        [] => String::new(),
        [TemplatePart::Lit(s)] => s.clone(),
        _ => return SVal::Top,
    };
    let mut out = SVal::empty();
    let mut lit = String::new();
    let mut arg_i = 0;
    let mut chars = fmt_str.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            lit.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => lit.push('%'),
            Some('d' | 's' | 'f' | 'u' | 'x') => {
                out = out.concat(&SVal::lit(&lit));
                lit.clear();
                let arg = args.get(arg_i).cloned().unwrap_or_default();
                arg_i += 1;
                // A conversion always emits one scalar, whatever fed it.
                let _ = arg;
                out = out.concat(&SVal::hole());
            }
            // Width/precision flags and exotic conversions: give up.
            _ => return SVal::Top,
        }
    }
    out.concat(&SVal::lit(&lit))
}

/// `implode(glue, array)`: with a static literal glue, the result is
/// either empty or `hole (glue hole)*`; otherwise ⊤.
fn implode_model(vals: &[SVal]) -> SVal {
    let glue = match vals.first() {
        Some(SVal::T(set)) if set.len() == 1 => {
            match set.iter().next().expect("singleton").as_slice() {
                [] => String::new(),
                [TemplatePart::Lit(s)] => s.clone(),
                _ => return SVal::Top,
            }
        }
        _ => return SVal::Top,
    };
    let mut rep_body = Vec::new();
    if !glue.is_empty() {
        rep_body.push(TemplatePart::Lit(glue));
    }
    rep_body.push(TemplatePart::Hole);
    SVal::T(BTreeSet::from([
        vec![],
        normalize(vec![TemplatePart::Hole, TemplatePart::Rep(rep_body)]),
    ]))
}

/// `str_replace(search, replace, subject)`: computed exactly when all
/// three are single static literals; a scalar subject stays one scalar;
/// anything else is ⊤.
fn str_replace_model(vals: &[SVal]) -> SVal {
    let as_lit = |v: Option<&SVal>| -> Option<String> {
        match v {
            Some(SVal::T(set)) if set.len() == 1 => {
                match set.iter().next().expect("singleton").as_slice() {
                    [] => Some(String::new()),
                    [TemplatePart::Lit(s)] => Some(s.clone()),
                    _ => None,
                }
            }
            _ => None,
        }
    };
    if let (Some(search), Some(replace), Some(subject)) =
        (as_lit(vals.first()), as_lit(vals.get(1)), as_lit(vals.get(2)))
    {
        if search.is_empty() {
            return SVal::lit(&subject);
        }
        return SVal::lit(&subject.replace(&search, &replace));
    }
    match vals.get(2) {
        Some(v) if v.scalarish() => SVal::hole(),
        _ => SVal::Top,
    }
}

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = a.clone();
    for (k, v) in b {
        match out.get(k) {
            Some(existing) => {
                let joined = existing.join(v);
                out.insert(k.clone(), joined);
            }
            None => {
                out.insert(k.clone(), v.clone());
            }
        }
    }
    out
}

fn widen_env(old: &Env, new: &Env) -> Env {
    let mut out = old.clone();
    for (k, v) in new {
        match out.get(k) {
            Some(existing) => {
                let w = widen(existing, v);
                out.insert(k.clone(), w);
            }
            None => {
                out.insert(k.clone(), v.clone());
            }
        }
    }
    out
}

/// The last-resort loop join: any variable still changing goes to ⊤.
fn top_out_diff(old: &Env, new: &Env) -> Env {
    let mut out = old.clone();
    for (k, v) in new {
        match out.get(k) {
            Some(existing) if existing == v => {}
            _ => {
                out.insert(k.clone(), SVal::Top);
            }
        }
    }
    out
}

/// Same preorder statement counting as `analyzer::count_block`.
fn count_block(stmts: &[Stmt]) -> usize {
    stmts.iter().map(count_stmt).sum()
}

fn count_stmt(stmt: &Stmt) -> usize {
    1 + match stmt {
        Stmt::If { then_branch, else_branch, .. } => {
            count_block(then_branch) + count_block(else_branch)
        }
        Stmt::While { body, .. } | Stmt::Foreach { body, .. } => count_block(body),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_sqlparse::template::TemplatePart::{Hole, Lit, Rep};

    fn infer(src: &str) -> EndpointModel {
        infer_source("test", src)
    }

    fn only_site(m: &EndpointModel) -> &SiteModel {
        assert_eq!(m.sites.len(), 1, "expected one sink site: {m:?}");
        &m.sites[0]
    }

    fn templates(m: &EndpointModel) -> Vec<Vec<TemplatePart>> {
        only_site(m)
            .templates
            .as_ref()
            .expect("site must be modeled")
            .iter()
            .map(|t| t.parts.clone())
            .collect()
    }

    #[test]
    fn constant_query_is_one_literal_template() {
        let m = infer(r#"mysql_query("SELECT * FROM posts ORDER BY date");"#);
        assert_eq!(templates(&m), vec![vec![Lit("SELECT * FROM posts ORDER BY date".into())]]);
    }

    #[test]
    fn request_input_becomes_a_hole() {
        let m = infer(
            r#"
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id=" . $id);
        "#,
        );
        assert_eq!(templates(&m), vec![vec![Lit("SELECT * FROM t WHERE id=".into()), Hole]]);
    }

    #[test]
    fn interpolation_and_sanitizers_are_holes() {
        let m = infer(
            r#"
            $id = intval($_GET['p']);
            mysql_query("SELECT * FROM posts WHERE ID=$id LIMIT 1");
        "#,
        );
        assert_eq!(
            templates(&m),
            vec![vec![Lit("SELECT * FROM posts WHERE ID=".into()), Hole, Lit(" LIMIT 1".into())]]
        );
    }

    #[test]
    fn branch_join_unions_templates() {
        let m = infer(
            r#"
            if ($x) { $q = "SELECT a FROM t"; } else { $q = "SELECT b FROM t"; }
            mysql_query($q);
        "#,
        );
        let ts = templates(&m);
        assert_eq!(ts.len(), 2);
        assert!(ts.contains(&vec![Lit("SELECT a FROM t".into())]));
        assert!(ts.contains(&vec![Lit("SELECT b FROM t".into())]));
    }

    #[test]
    fn concat_loop_widens_to_rep() {
        let m = infer(
            r#"
            $ids = $_POST['ids'];
            $frag = '';
            foreach ($ids as $k => $v) {
                $frag .= $k . ",";
            }
            db_query("SELECT * FROM users WHERE id IN ($frag" . "0)");
        "#,
        );
        let ts = templates(&m);
        // Zero iterations and the widened Rep form.
        assert!(ts.contains(&vec![Lit("SELECT * FROM users WHERE id IN (0)".into())]), "{ts:?}");
        assert!(
            ts.contains(&vec![
                Lit("SELECT * FROM users WHERE id IN (".into()),
                Rep(vec![Hole, Lit(",".into())]),
                Lit("0)".into()),
            ]),
            "{ts:?}"
        );
    }

    #[test]
    fn foreach_over_array_literal_unions_elements() {
        let m = infer(
            r#"
            foreach (array('siteurl', 'blogname') as $opt) {
                mysql_query("SELECT option_value FROM wp_options WHERE option_name='" . $opt . "'");
            }
        "#,
        );
        let ts = templates(&m);
        assert!(ts.contains(&vec![Lit(
            "SELECT option_value FROM wp_options WHERE option_name='siteurl'".into()
        )]));
        assert!(ts.contains(&vec![Lit(
            "SELECT option_value FROM wp_options WHERE option_name='blogname'".into()
        )]));
    }

    #[test]
    fn mysqli_query_uses_second_argument() {
        let m = infer(
            r#"
            $id = $_GET['id'];
            mysqli_query($link, "SELECT * FROM t WHERE id=" . $id);
        "#,
        );
        assert_eq!(templates(&m), vec![vec![Lit("SELECT * FROM t WHERE id=".into()), Hole]]);
    }

    #[test]
    fn db_query_with_args_array_is_top() {
        let m = infer(
            r#"
            $ids = $_GET['ids'];
            db_query("SELECT * FROM users WHERE uid IN (:ids)", array(':ids' => $ids));
        "#,
        );
        assert_eq!(only_site(&m).templates, None, "placeholder expansion is unmodelable");
    }

    #[test]
    fn unknown_builtin_is_top() {
        let m = infer(
            r#"
            $q = build_query_somehow($_GET['x']);
            mysql_query($q);
        "#,
        );
        assert_eq!(only_site(&m).templates, None);
    }

    #[test]
    fn sprintf_expands_conversions() {
        let m = infer(
            r#"
            $q = sprintf("SELECT * FROM t WHERE a=%d AND b='%s'", $_GET['a'], $_GET['b']);
            mysql_query($q);
        "#,
        );
        assert_eq!(
            templates(&m),
            vec![vec![
                Lit("SELECT * FROM t WHERE a=".into()),
                Hole,
                Lit(" AND b='".into()),
                Hole,
                Lit("'".into()),
            ]]
        );
    }

    #[test]
    fn implode_models_list_shapes() {
        let m = infer(
            r#"
            $list = implode(",", $_GET['ids']);
            mysql_query("SELECT * FROM t WHERE id IN (" . $list . ")");
        "#,
        );
        let ts = templates(&m);
        assert!(ts.contains(&vec![Lit("SELECT * FROM t WHERE id IN ()".into())]), "{ts:?}");
        assert!(
            ts.contains(&vec![
                Lit("SELECT * FROM t WHERE id IN (".into()),
                Hole,
                Rep(vec![Lit(",".into()), Hole]),
                Lit(")".into()),
            ]),
            "{ts:?}"
        );
    }

    #[test]
    fn str_replace_static_is_exact_dynamic_is_hole() {
        let exact = infer(
            r#"
            $t = str_replace("TBL", "wp_posts", "SELECT * FROM TBL");
            mysql_query($t);
        "#,
        );
        assert_eq!(templates(&exact), vec![vec![Lit("SELECT * FROM wp_posts".into())]]);

        let dynamic = infer(
            r#"
            $v = str_replace("x", "y", $_POST['v']);
            mysql_query("SELECT * FROM t WHERE v='" . $v . "'");
        "#,
        );
        assert_eq!(
            templates(&dynamic),
            vec![vec![Lit("SELECT * FROM t WHERE v='".into()), Hole, Lit("'".into())]]
        );
    }

    #[test]
    fn while_fetch_loop_keeps_model_bounded() {
        let m = infer(
            r#"
            $r = mysql_query("SELECT id FROM t");
            while ($row = mysql_fetch_assoc($r)) {
                mysql_query("SELECT * FROM u WHERE id=" . $row);
            }
        "#,
        );
        assert_eq!(m.sites.len(), 2);
        let inner = m.sites.iter().find(|s| s.stmt_id != 0).expect("loop sink");
        assert_eq!(
            inner.templates.as_ref().expect("modeled")[0].parts,
            vec![Lit("SELECT * FROM u WHERE id=".into()), Hole]
        );
    }

    #[test]
    fn parse_error_is_unmodeled() {
        let m = infer("$x = ;");
        assert!(m.parse_error);
        assert!(!m.compile().complete);
    }

    #[test]
    fn compile_produces_working_route_model() {
        let m = infer(
            r#"
            $id = intval($_GET['p']);
            mysql_query("SELECT * FROM posts WHERE ID=$id LIMIT 1");
        "#,
        );
        let rm = m.compile();
        assert!(rm.complete);
        assert!(rm.accepts("SELECT * FROM posts WHERE ID=7 LIMIT 1"));
        assert!(!rm.accepts("SELECT * FROM posts WHERE ID=7 OR 1=1 LIMIT 1"));
    }

    #[test]
    fn stmt_ids_align_with_taint_findings() {
        let src = r#"
            $id = $_GET['id'];
            if ($id) {
                mysql_query("SELECT * FROM t WHERE id=" . $id);
            }
        "#;
        let model = infer_source("x", src);
        let taint = crate::analyze_source("x", src, &crate::AnalyzerConfig::default());
        assert_eq!(model.sites.len(), 1);
        assert_eq!(taint.findings.len(), 1);
        assert_eq!(model.sites[0].stmt_id, taint.findings[0].stmt_id);
        assert_eq!(model.sites[0].sink, taint.findings[0].sink);
    }
}
