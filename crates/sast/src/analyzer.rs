//! The abstract interpreter: a flow-sensitive worklist fixpoint over the
//! taint lattice, walking statements in the same preorder the parser's
//! span table uses.
//!
//! The variable environment maps names to [`AbstractVal`]s; arrays are
//! smashed (one abstract value per variable, indices joined in — written
//! *keys* included, since array keys are an injection channel).
//! Branches are analyzed on cloned environments and joined afterwards, so
//! a sanitizer inside only one `if` arm never clears taint on the join.
//! Loop bodies iterate to a fixpoint on (taint, provenance) — the finite
//! lattice guarantees termination; traces are bounded separately.
//! `break`/`continue` terminate their abstract path: the environment at
//! the jump is recorded (break states join the loop's exit state,
//! continue states its next-iteration entry) and the statements after the
//! jump are skipped on that path, so a strong update in unreachable tail
//! code can never scrub taint that concretely escapes the loop.

use crate::lattice::{AbstractVal, Taint};
use crate::summaries::{effect_of, is_sink, Effect};
use joza_phpsim::ast::{AssignOp, BinOp, Expr, InterpPart, Stmt, UnaryOp};
use joza_phpsim::parser::parse_program_spanned;
use joza_phpsim::span::Span;
use std::collections::BTreeMap;

/// Analyzer configuration.
#[derive(Debug, Clone, Default)]
pub struct AnalyzerConfig {
    /// When true, the framework escapes every request input before plugin
    /// code runs (WordPress magic quotes), so source reads start at
    /// `MaybeTainted` instead of `Tainted`. `stripslashes`-style decodes
    /// restore them to `Tainted`.
    pub input_escaped: bool,
    /// DB-sourced taint: sink call sites (by preorder statement id) whose
    /// *result handles* carry attacker-reachable stored data. The handle
    /// returned at such a site is `Tainted` with the given `db:<cell>`
    /// source labels, and row fetches propagate it onward. Empty for
    /// plain first-order analysis; `crate::storeflow` fills it in from
    /// the cross-route store/load fixpoint. Magic quotes do *not*
    /// downgrade these sources: the framework escapes request input, but
    /// values read back from the database are raw (SQL parsing already
    /// unescaped them on the way in).
    pub db_sources: BTreeMap<usize, Vec<String>>,
}

/// One statically-inferred source→sink flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Endpoint (route slug / file label) the flow is in.
    pub endpoint: String,
    /// Preorder statement id of the sink call.
    pub stmt_id: usize,
    /// Byte span of the sink statement.
    pub span: Span,
    /// 1-based source line of the sink statement.
    pub line: usize,
    /// Sink builtin name (`mysql_query`, …).
    pub sink: String,
    /// Worst taint reaching the sink.
    pub taint: Taint,
    /// Request parameters that can reach the sink (sorted).
    pub sources: Vec<String>,
    /// Bounded source→sink hop trace.
    pub trace: Vec<String>,
    /// First line of the sink statement's source text (trimmed).
    pub snippet: String,
}

/// Per-endpoint result: the gate fast-path contract plus findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSummary {
    /// Endpoint (route slug) analyzed.
    pub endpoint: String,
    /// True iff every DB sink in the endpoint receives only `Untainted`
    /// data (and the source parsed). Endpoints with no sinks are
    /// taint-free. This is the *only* condition under which
    /// `StaticFastPath` may skip the dynamic gate.
    pub taint_free: bool,
    /// Number of distinct sink call sites seen.
    pub sink_count: usize,
    /// Flows whose sink taint exceeds `Untainted`, sorted by
    /// (endpoint, span.lo, sink) for deterministic output.
    pub findings: Vec<Finding>,
    /// Parse failure, if any (conservatively not taint-free).
    pub parse_error: Option<String>,
}

/// Analyzes one endpoint's source text.
pub fn analyze_source(endpoint: &str, src: &str, config: &AnalyzerConfig) -> TaintSummary {
    let (prog, spans) = match parse_program_spanned(src) {
        Ok(ok) => ok,
        Err(e) => {
            // Unparsable source cannot be proven taint-free.
            return TaintSummary {
                endpoint: endpoint.to_string(),
                taint_free: false,
                sink_count: 0,
                findings: Vec::new(),
                parse_error: Some(e.to_string()),
            };
        }
    };
    let mut interp = AbstractInterp {
        endpoint,
        src,
        spans: &spans,
        config,
        sinks: BTreeMap::new(),
        break_frames: Vec::new(),
        continue_frames: Vec::new(),
    };
    let mut env = Env::new();
    let mut next = 0usize;
    interp.eval_block(&prog, &mut env, &mut next);

    let sink_count = interp.sinks.len();
    let mut findings: Vec<Finding> =
        interp.sinks.into_values().filter(|f| f.taint > Taint::Untainted).collect();
    findings.sort_by(|a, b| {
        (a.endpoint.as_str(), a.span.lo, a.sink.as_str()).cmp(&(
            b.endpoint.as_str(),
            b.span.lo,
            b.sink.as_str(),
        ))
    });
    TaintSummary {
        endpoint: endpoint.to_string(),
        taint_free: findings.is_empty(),
        sink_count,
        findings,
        parse_error: None,
    }
}

type Env = BTreeMap<String, AbstractVal>;

/// Superglobals treated as attacker-controlled sources.
const SOURCE_SUPERGLOBALS: &[&str] = &["_GET", "_POST", "_COOKIE", "_REQUEST"];

/// Loop-fixpoint safety bound; the lattice converges far earlier.
const MAX_LOOP_ITERS: usize = 50;

/// How a statement (or block) hands control onward on one abstract path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// Execution continues with the next statement.
    Normal,
    /// The path left via `break`/`continue`; its environment has already
    /// been recorded with the enclosing loop.
    Exited,
}

struct AbstractInterp<'a> {
    endpoint: &'a str,
    src: &'a str,
    spans: &'a [Span],
    config: &'a AnalyzerConfig,
    /// All sink call sites keyed by (stmt id, sink name); re-visits from
    /// loop fixpoints join in.
    sinks: BTreeMap<(usize, String), Finding>,
    /// Per enclosing loop, the environments captured at `break`
    /// statements — joined into the loop's exit state.
    break_frames: Vec<Vec<Env>>,
    /// Per enclosing loop, the environments captured at `continue`
    /// statements — joined into the next iteration's entry state.
    continue_frames: Vec<Vec<Env>>,
}

impl AbstractInterp<'_> {
    fn source_taint(&self) -> Taint {
        if self.config.input_escaped {
            Taint::MaybeTainted
        } else {
            Taint::Tainted
        }
    }

    /// Walks a statement list, assigning preorder ids that mirror
    /// `joza_phpsim::visit::walk_program`.
    ///
    /// Stops evaluating after a statement that exits the path
    /// (`break`/`continue`), but still advances `next` past the skipped
    /// tail so preorder ids stay aligned with `walk_program`.
    fn eval_block(&mut self, stmts: &[Stmt], env: &mut Env, next: &mut usize) -> Flow {
        for (i, stmt) in stmts.iter().enumerate() {
            if self.eval_stmt(stmt, env, next) == Flow::Exited {
                *next += count_block(&stmts[i + 1..]);
                return Flow::Exited;
            }
        }
        Flow::Normal
    }

    fn eval_stmt(&mut self, stmt: &Stmt, env: &mut Env, next: &mut usize) -> Flow {
        let id = *next;
        *next += 1;
        match stmt {
            Stmt::Expr(e) => {
                self.eval_expr(e, env, id);
            }
            Stmt::Assign { var, indices, op, expr } => {
                let mut idx_taint = AbstractVal::untainted();
                for idx in indices.iter().flatten() {
                    idx_taint = idx_taint.join(&self.eval_expr(idx, env, id));
                }
                let mut val = self.eval_expr(expr, env, id);
                match op {
                    Some(AssignOp::Concat) => {
                        let old = env.get(var).cloned().unwrap_or_default();
                        val = old.join(&val);
                    }
                    Some(AssignOp::Add) | Some(AssignOp::Sub) => {
                        // Arithmetic coerces to a number: attacker bytes
                        // cannot survive.
                        val = AbstractVal::untainted();
                    }
                    None => {}
                }
                val.push_hop(&format!("${var}"));
                if indices.is_empty() {
                    env.insert(var.clone(), val);
                } else {
                    // Smashed arrays: weak update (join into the whole),
                    // and the written *key* taints the array too — foreach
                    // reads keys back out of the smashed value.
                    val = val.join(&idx_taint);
                    let joined = env.get(var).map_or_else(|| val.clone(), |old| old.join(&val));
                    env.insert(var.clone(), joined);
                }
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.eval_expr(cond, env, id);
                let mut then_env = env.clone();
                let then_flow = self.eval_block(then_branch, &mut then_env, next);
                let mut else_env = env.clone();
                let else_flow = self.eval_block(else_branch, &mut else_env, next);
                // A branch that exited contributes no state to the code
                // after the `if` — its environment was recorded with the
                // enclosing loop when the jump was evaluated.
                match (then_flow, else_flow) {
                    (Flow::Normal, Flow::Normal) => *env = join_env(&then_env, &else_env),
                    (Flow::Normal, Flow::Exited) => *env = then_env,
                    (Flow::Exited, Flow::Normal) => *env = else_env,
                    (Flow::Exited, Flow::Exited) => return Flow::Exited,
                }
            }
            Stmt::While { cond, body } => {
                self.eval_expr(cond, env, id);
                self.loop_fixpoint(body, env, next, |interp, body, env, next| {
                    interp.eval_block(body, env, next);
                });
                // Re-read the condition on the post state (side effects in
                // `while ($row = fetch(...))` style conditions).
                self.eval_expr(cond, env, id);
            }
            Stmt::Foreach { array, key_var, val_var, body } => {
                let arr = self.eval_expr(array, env, id);
                let kv = key_var.clone();
                let vv = val_var.clone();
                self.loop_fixpoint(body, env, next, move |interp, body, env, next| {
                    // Smashed arrays: both keys and values carry the
                    // array's taint (array *keys* are the CVE-2014-3704
                    // channel).
                    let mut elem = arr.clone();
                    elem.push_hop(&format!("${vv}"));
                    env.insert(vv.clone(), elem);
                    if let Some(k) = &kv {
                        let mut key_val = arr.clone();
                        key_val.push_hop(&format!("${k}"));
                        env.insert(k.clone(), key_val);
                    }
                    interp.eval_block(body, env, next);
                });
            }
            Stmt::Echo(exprs) => {
                for e in exprs {
                    self.eval_expr(e, env, id);
                }
            }
            Stmt::Return(value) | Stmt::Exit(value) => {
                if let Some(e) = value {
                    self.eval_expr(e, env, id);
                }
            }
            Stmt::Break => {
                if let Some(frame) = self.break_frames.last_mut() {
                    frame.push(env.clone());
                }
                return Flow::Exited;
            }
            Stmt::Continue => {
                if let Some(frame) = self.continue_frames.last_mut() {
                    frame.push(env.clone());
                }
                return Flow::Exited;
            }
        }
        Flow::Normal
    }

    /// Runs `body` repeatedly (each pass numbering statements from the
    /// same preorder base) until the environment stops changing on
    /// (taint, provenance), then advances `next` past the body.
    ///
    /// `continue` states from a pass are joined into the next iteration's
    /// entry; `break` states are joined into the loop's exit, so state at
    /// a mid-body jump can never be scrubbed by the (unreachable) tail of
    /// the body.
    fn loop_fixpoint<F>(&mut self, body: &[Stmt], env: &mut Env, next: &mut usize, mut pass: F)
    where
        F: FnMut(&mut Self, &[Stmt], &mut Env, &mut usize),
    {
        let body_start = *next;
        let body_len = count_block(body);
        self.break_frames.push(Vec::new());
        self.continue_frames.push(Vec::new());
        for _ in 0..MAX_LOOP_ITERS {
            let mut trial = env.clone();
            let mut counter = body_start;
            pass(self, body, &mut trial, &mut counter);
            debug_assert_eq!(counter, body_start + body_len);
            for cont in self.continue_frames.last_mut().expect("loop frame").drain(..) {
                trial = join_env(&trial, &cont);
            }
            let joined = join_env(env, &trial);
            if env_converged(env, &joined) {
                break;
            }
            *env = joined;
        }
        self.continue_frames.pop();
        for broke in self.break_frames.pop().expect("loop frame") {
            *env = join_env(env, &broke);
        }
        *next = body_start + body_len;
    }

    fn eval_expr(&mut self, expr: &Expr, env: &mut Env, stmt_id: usize) -> AbstractVal {
        match expr {
            Expr::Lit(_) => AbstractVal::untainted(),
            Expr::Var(name) => self.read_var(name, env),
            Expr::Interp(parts) => {
                let mut out = AbstractVal::untainted();
                for p in parts {
                    if let InterpPart::Var(name) = p {
                        out = out.join(&self.read_var(name, env));
                    }
                }
                out
            }
            Expr::Index { base, index } => {
                if let Expr::Var(name) = base.as_ref() {
                    if is_source_superglobal(name) {
                        self.eval_expr(index, env, stmt_id);
                        let label = source_label(name, index);
                        return AbstractVal::source(&label, self.source_taint());
                    }
                }
                let b = self.eval_expr(base, env, stmt_id);
                let i = self.eval_expr(index, env, stmt_id);
                // Reading a tainted index out of an untainted array yields
                // untainted data; only the array's own taint flows out.
                let _ = i;
                b
            }
            Expr::Call { name, args } => self.eval_call(name, args, env, stmt_id),
            Expr::Unary { op, expr } => {
                let v = self.eval_expr(expr, env, stmt_id);
                match op {
                    // `@expr` is a transparent pass-through.
                    UnaryOp::Silence => v,
                    // `!`/`-` coerce to bool/number.
                    UnaryOp::Not | UnaryOp::Neg => AbstractVal::untainted(),
                }
            }
            Expr::Binary { left, op, right } => {
                let l = self.eval_expr(left, env, stmt_id);
                let r = self.eval_expr(right, env, stmt_id);
                match op {
                    BinOp::Concat => l.join(&r),
                    // Arithmetic and comparisons coerce attacker strings
                    // away.
                    _ => AbstractVal::untainted(),
                }
            }
            Expr::Ternary { cond, then_val, else_val } => {
                let c = self.eval_expr(cond, env, stmt_id);
                let e = self.eval_expr(else_val, env, stmt_id);
                match then_val {
                    Some(t) => {
                        let t = self.eval_expr(t, env, stmt_id);
                        t.join(&e)
                    }
                    // `$a ?: $b` evaluates to the condition when truthy.
                    None => c.join(&e),
                }
            }
            Expr::ArrayLit(items) => {
                // Smashed: the array's abstract value is the join of every
                // key and value (keys matter: CVE-2014-3704).
                let mut out = AbstractVal::untainted();
                for (k, v) in items {
                    if let Some(k) = k {
                        out = out.join(&self.eval_expr(k, env, stmt_id));
                    }
                    out = out.join(&self.eval_expr(v, env, stmt_id));
                }
                out
            }
            Expr::Isset(exprs) => {
                for e in exprs {
                    self.eval_expr(e, env, stmt_id);
                }
                AbstractVal::untainted()
            }
            Expr::Empty(e) => {
                self.eval_expr(e, env, stmt_id);
                AbstractVal::untainted()
            }
            Expr::AssignExpr { var, expr } => {
                let mut v = self.eval_expr(expr, env, stmt_id);
                v.push_hop(&format!("${var}"));
                env.insert(var.clone(), v.clone());
                v
            }
        }
    }

    fn read_var(&self, name: &str, env: &Env) -> AbstractVal {
        if is_source_superglobal(name) {
            // A bare `$_GET` read taints with an unknown parameter.
            return AbstractVal::source(&format!("${name}[*]"), self.source_taint());
        }
        env.get(name).cloned().unwrap_or_default()
    }

    fn eval_call(
        &mut self,
        name: &str,
        args: &[Expr],
        env: &mut Env,
        stmt_id: usize,
    ) -> AbstractVal {
        let mut joined = AbstractVal::untainted();
        for a in args {
            let v = self.eval_expr(a, env, stmt_id);
            joined = joined.join(&v);
        }
        if is_sink(name) {
            self.record_sink(stmt_id, name, &joined);
            if let Some(cells) = self.config.db_sources.get(&stmt_id) {
                // This sink's result handle reads attacker-reachable
                // cells: the handle is tainted with db-cell provenance
                // (fetches propagate it to every row value).
                let mut v = AbstractVal::untainted();
                for cell in cells {
                    v = v.join(&AbstractVal::source(cell, Taint::Tainted));
                }
                v.push_hop(&format!("{}()", name.to_ascii_lowercase()));
                return v;
            }
        }
        match effect_of(name) {
            Effect::Propagate => joined,
            Effect::Escape => {
                if joined.taint == Taint::Untainted {
                    AbstractVal::untainted()
                } else {
                    let mut v = joined;
                    v.taint = Taint::MaybeTainted;
                    v.push_hop(&format!("{}()", name.to_ascii_lowercase()));
                    v
                }
            }
            Effect::Sanitize | Effect::Fresh => AbstractVal::untainted(),
            Effect::Unescape => {
                if joined.taint == Taint::Untainted {
                    AbstractVal::untainted()
                } else {
                    let mut v = joined;
                    v.taint = Taint::Tainted;
                    v.push_hop(&format!("{}()", name.to_ascii_lowercase()));
                    v
                }
            }
        }
    }

    fn record_sink(&mut self, stmt_id: usize, sink: &str, val: &AbstractVal) {
        let sink = sink.to_ascii_lowercase();
        let span = self.spans.get(stmt_id).copied().unwrap_or_default();
        let entry = self.sinks.entry((stmt_id, sink.clone())).or_insert_with(|| Finding {
            endpoint: self.endpoint.to_string(),
            stmt_id,
            span,
            line: span.line(self.src),
            sink,
            taint: Taint::Untainted,
            sources: Vec::new(),
            trace: Vec::new(),
            snippet: snippet(span.slice(self.src)),
        });
        if val.taint > entry.taint
            || (val.taint == entry.taint && entry.trace.is_empty() && !val.trace.is_empty())
        {
            entry.trace = val.trace.clone();
        }
        entry.taint = entry.taint.join(val.taint);
        for s in &val.sources {
            if !entry.sources.contains(s) {
                entry.sources.push(s.clone());
            }
        }
        entry.sources.sort();
    }
}

fn is_source_superglobal(name: &str) -> bool {
    SOURCE_SUPERGLOBALS.contains(&name)
}

fn source_label(superglobal: &str, index: &Expr) -> String {
    use joza_phpsim::value::PValue;
    match index {
        Expr::Lit(PValue::Str(s)) => format!("$_{}['{}']", &superglobal[1..], s),
        Expr::Lit(PValue::Int(i)) => format!("$_{}[{}]", &superglobal[1..], i),
        _ => format!("$_{}[?]", &superglobal[1..]),
    }
}

fn snippet(stmt_text: &str) -> String {
    let first = stmt_text.lines().next().unwrap_or("").trim();
    if first.chars().count() > 72 {
        let cut: String = first.chars().take(71).collect();
        format!("{cut}…")
    } else {
        first.to_string()
    }
}

fn join_env(a: &Env, b: &Env) -> Env {
    let mut out = a.clone();
    for (k, v) in b {
        match out.get(k) {
            Some(existing) => {
                let joined = existing.join(v);
                out.insert(k.clone(), joined);
            }
            // Present in one branch only: join with the implicit
            // untainted/undefined default keeps the branch's taint.
            None => {
                out.insert(k.clone(), v.clone());
            }
        }
    }
    out
}

fn env_converged(old: &Env, new: &Env) -> bool {
    old.len() == new.len()
        && old.iter().zip(new.iter()).all(|((ka, va), (kb, vb))| ka == kb && va.same_abstract(vb))
}

/// Number of statements in a subtree — must agree with the preorder
/// numbering in `joza_phpsim::visit`.
fn count_block(stmts: &[Stmt]) -> usize {
    stmts.iter().map(count_stmt).sum()
}

fn count_stmt(stmt: &Stmt) -> usize {
    1 + match stmt {
        Stmt::If { then_branch, else_branch, .. } => {
            count_block(then_branch) + count_block(else_branch)
        }
        Stmt::While { body, .. } | Stmt::Foreach { body, .. } => count_block(body),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> TaintSummary {
        analyze_source("test", src, &AnalyzerConfig::default())
    }

    fn analyze_escaped(src: &str) -> TaintSummary {
        analyze_source(
            "test",
            src,
            &AnalyzerConfig { input_escaped: true, ..AnalyzerConfig::default() },
        )
    }

    #[test]
    fn direct_flow_is_tainted() {
        let s = analyze(
            r#"
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id=$id");
        "#,
        );
        assert!(!s.taint_free);
        assert_eq!(s.sink_count, 1);
        assert_eq!(s.findings.len(), 1);
        let f = &s.findings[0];
        assert_eq!(f.taint, Taint::Tainted);
        assert_eq!(f.sources, vec!["$_GET['id']".to_string()]);
        assert_eq!(f.trace, vec!["$_GET['id']".to_string(), "$id".to_string()]);
        assert!(f.snippet.contains("mysql_query"));
        assert_eq!(f.line, 3);
    }

    #[test]
    fn escaped_then_concatenated_is_maybe_tainted() {
        let s = analyze(
            r#"
            $name = mysql_real_escape_string($_POST['name']);
            $q = "SELECT * FROM u WHERE name='" . $name . "'";
            mysql_query($q);
        "#,
        );
        assert!(!s.taint_free, "escaped input still reaches the sink");
        assert_eq!(s.findings[0].taint, Taint::MaybeTainted);
        assert_eq!(s.findings[0].sources, vec!["$_POST['name']".to_string()]);
    }

    #[test]
    fn int_cast_is_untainted() {
        let s = analyze(
            r#"
            $id = intval($_GET['id']);
            mysql_query("SELECT * FROM t WHERE id=$id LIMIT 1");
        "#,
        );
        assert!(s.taint_free);
        assert_eq!(s.sink_count, 1);
        assert!(s.findings.is_empty());
    }

    #[test]
    fn sanitizer_in_one_branch_does_not_clear_taint_at_join() {
        let s = analyze(
            r#"
            $id = $_GET['id'];
            if ($mode) {
                $id = intval($id);
            }
            mysql_query("SELECT * FROM t WHERE id=$id");
        "#,
        );
        assert!(!s.taint_free, "the else path still carries raw input");
        assert_eq!(s.findings[0].taint, Taint::Tainted);
    }

    #[test]
    fn sanitizer_on_both_branches_clears_taint() {
        let s = analyze(
            r#"
            $id = $_GET['id'];
            if ($mode) {
                $id = intval($id);
            } else {
                $id = 0;
            }
            mysql_query("SELECT * FROM t WHERE id=$id");
        "#,
        );
        assert!(s.taint_free);
    }

    #[test]
    fn magic_quotes_inputs_start_maybe_then_stripslashes_restores() {
        let escaped = analyze_escaped(
            r#"
            $v = $_GET['v'];
            mysql_query("SELECT * FROM t WHERE v='$v'");
        "#,
        );
        assert_eq!(escaped.findings[0].taint, Taint::MaybeTainted);

        let stripped = analyze_escaped(
            r#"
            $v = stripslashes($_GET['v']);
            mysql_query("SELECT * FROM t WHERE v='$v'");
        "#,
        );
        assert_eq!(stripped.findings[0].taint, Taint::Tainted);

        let decoded = analyze_escaped(
            r#"
            $v = base64_decode($_POST['payload']);
            mysql_query("SELECT * FROM t WHERE v='$v'");
        "#,
        );
        assert_eq!(decoded.findings[0].taint, Taint::Tainted, "decode reverses escaping");
    }

    #[test]
    fn concat_assign_accumulates_taint() {
        let s = analyze(
            r#"
            $q = "SELECT * FROM t WHERE 1=1";
            $q .= " AND name='" . $_GET['name'] . "'";
            mysql_query($q);
        "#,
        );
        assert!(!s.taint_free);
        assert_eq!(s.findings[0].sources, vec!["$_GET['name']".to_string()]);
    }

    #[test]
    fn arithmetic_coerces_taint_away() {
        let s = analyze(
            r#"
            $n = $_GET['n'] + 0;
            $m = $_GET['m'];
            $m += 5;
            mysql_query("SELECT * FROM t LIMIT $n OFFSET $m");
        "#,
        );
        assert!(s.taint_free);
    }

    #[test]
    fn while_loop_reaches_fixpoint_and_finds_flow() {
        let s = analyze(
            r#"
            $q = "SELECT * FROM t WHERE 1=1";
            $i = 0;
            while ($i < 3) {
                $q .= " OR name='" . $_GET['name'] . "'";
                $i += 1;
            }
            mysql_query($q);
        "#,
        );
        assert!(!s.taint_free);
        assert_eq!(s.findings[0].taint, Taint::Tainted);
    }

    #[test]
    fn foreach_array_keys_carry_taint() {
        // The CVE-2014-3704 shape: attacker-controlled array *keys* are
        // spliced into the query text.
        let s = analyze(
            r#"
            $ids = $_POST['ids'];
            $frag = '';
            foreach ($ids as $k => $v) {
                $frag .= $k . ",";
            }
            db_query("SELECT * FROM users WHERE id IN ($frag)");
        "#,
        );
        assert!(!s.taint_free);
        assert_eq!(s.findings[0].sink, "db_query");
        assert_eq!(s.findings[0].sources, vec!["$_POST['ids']".to_string()]);
    }

    #[test]
    fn db_query_array_argument_is_a_sink_channel() {
        let s = analyze(
            r#"
            $ids = $_GET['ids'];
            db_query("SELECT * FROM users WHERE uid IN (:ids)", array(':ids' => $ids));
        "#,
        );
        assert!(!s.taint_free);
    }

    #[test]
    fn no_sinks_means_taint_free() {
        let s = analyze("$x = $_GET['x']; echo $x;");
        assert!(s.taint_free);
        assert_eq!(s.sink_count, 0);
    }

    #[test]
    fn parse_error_is_conservative() {
        let s = analyze("$x = ;");
        assert!(!s.taint_free);
        assert!(s.parse_error.is_some());
    }

    #[test]
    fn findings_sorted_by_span_then_sink() {
        let s = analyze(
            r#"
            $a = $_GET['a'];
            mysql_query("SELECT 1 WHERE x='$a'");
            mysqli_query($c, "SELECT 2 WHERE y='$a'");
        "#,
        );
        assert_eq!(s.findings.len(), 2);
        assert!(s.findings[0].span.lo < s.findings[1].span.lo);
        assert_eq!(s.findings[0].sink, "mysql_query");
        assert_eq!(s.findings[1].sink, "mysqli_query");
    }

    #[test]
    fn ternary_and_isset_guard_still_taints() {
        let s = analyze(
            r#"
            $id = isset($_GET['id']) ? $_GET['id'] : 0;
            mysql_query("SELECT * FROM t WHERE id=$id");
        "#,
        );
        assert!(!s.taint_free);
        assert_eq!(s.findings[0].sources, vec!["$_GET['id']".to_string()]);
    }

    #[test]
    fn string_builders_carry_taint_to_sinks() {
        // Soundness for the querymodel agreement: every construction the
        // structural pass summarizes must still flow taint here.
        let sprintf = analyze(
            r#"
            $q = sprintf("SELECT * FROM t WHERE name='%s'", $_GET['name']);
            mysql_query($q);
        "#,
        );
        assert!(!sprintf.taint_free, "sprintf embeds its arguments verbatim");

        let implode = analyze(
            r#"
            $ids = $_GET['ids'];
            $list = implode(",", $ids);
            mysql_query("SELECT * FROM t WHERE id IN ($list)");
        "#,
        );
        assert!(!implode.taint_free, "implode splices elements unescaped");

        let replaced = analyze(
            r#"
            $v = str_replace("x", "y", $_POST['v']);
            mysql_query("SELECT * FROM t WHERE v='$v'");
        "#,
        );
        assert!(!replaced.taint_free, "str_replace is not a sanitizer");
    }

    #[test]
    fn fetch_results_are_trusted() {
        // Under the plain first-order config no sink site is a DB taint
        // source, so the result handle is Fresh and fetches propagate
        // nothing. `storeflow` re-runs this same analysis with
        // `db_sources` filled in when the read cells are dirty.
        let s = analyze(
            r#"
            $r = mysql_query("SELECT id FROM t");
            while ($row = mysql_fetch_assoc($r)) {
                mysql_query("SELECT * FROM u WHERE id=" . $row);
            }
        "#,
        );
        assert!(s.taint_free, "first-order analysis trusts fetch results");
        assert_eq!(s.sink_count, 2);
    }

    #[test]
    fn db_sources_taint_fetched_rows_to_downstream_sinks() {
        let src = r#"
            $r = mysql_query("SELECT id FROM t");
            while ($row = mysql_fetch_assoc($r)) {
                mysql_query("SELECT * FROM u WHERE id=" . $row);
            }
        "#;
        // The load is the first statement → preorder id 0.
        let mut db_sources = BTreeMap::new();
        db_sources.insert(0usize, vec!["db:t.id".to_string()]);
        let s = analyze_source("test", src, &AnalyzerConfig { input_escaped: false, db_sources });
        assert!(!s.taint_free, "dirty-cell reads re-introduce taint");
        assert_eq!(s.findings.len(), 1);
        let f = &s.findings[0];
        assert_eq!(f.taint, Taint::Tainted);
        assert_eq!(f.sources, vec!["db:t.id".to_string()]);
        assert!(f.snippet.contains("FROM u"), "the downstream sink is the finding");
    }

    #[test]
    fn db_sources_are_not_downgraded_by_magic_quotes() {
        // Stored values are raw: the framework's input escaping already
        // happened (and was undone by SQL parsing) on the *plant* request.
        let src = r#"
            $r = mysql_query("SELECT bio FROM profiles WHERE id=1");
            $row = mysql_fetch_row($r);
            mysql_query("SELECT * FROM posts WHERE author='" . $row . "'");
        "#;
        let mut db_sources = BTreeMap::new();
        db_sources.insert(0usize, vec!["db:profiles.bio".to_string()]);
        let s = analyze_source("test", src, &AnalyzerConfig { input_escaped: true, db_sources });
        assert_eq!(s.findings.len(), 1);
        assert_eq!(s.findings[0].taint, Taint::Tainted);
    }
}
