#![warn(missing_docs)]
//! Static taint analysis over phpsim ASTs (`joza-sast`).
//!
//! Joza's dynamic detectors (NTI + PTI) pay a per-query matching cost at
//! runtime even for endpoints whose queries can never carry user input.
//! This crate analyzes endpoint source *ahead of time*: it models the
//! request superglobals as sources, the `mysql_query`-family builtins as
//! sinks, and the escaping/casting builtins as sanitizers, then runs an
//! abstract interpretation to a fixpoint over the taint lattice
//! `Untainted < MaybeTainted < Tainted` with per-source provenance.
//!
//! Outputs:
//!
//! * a [`TaintSummary`] per endpoint — `taint_free` endpoints can be
//!   served through `joza_webapp::gate::StaticFastPath` without invoking
//!   the dynamic gate at all;
//! * deterministic [`Finding`]s (source→sink traces with AST spans) that
//!   the `sast_report` binary compares against the lab corpus's known
//!   ground truth.
//!
//! The fast-path contract is deliberately one-sided: `taint_free` must
//! never be true for an endpoint whose queries can carry attacker bytes
//! (soundness); false positives (a clean endpoint the analysis cannot
//! prove clean) merely forfeit the speedup.
//!
//! # Examples
//!
//! ```
//! use joza_sast::{analyze_source, AnalyzerConfig, Taint};
//!
//! let vulnerable = r#"
//!     $id = $_GET['id'];
//!     mysql_query("SELECT * FROM posts WHERE ID=$id");
//! "#;
//! let summary = analyze_source("demo", vulnerable, &AnalyzerConfig::default());
//! assert!(!summary.taint_free);
//! assert_eq!(summary.findings[0].taint, Taint::Tainted);
//! assert_eq!(summary.findings[0].sources, vec!["$_GET['id']".to_string()]);
//!
//! let clean = r#"
//!     $id = intval($_GET['id']);
//!     mysql_query("SELECT * FROM posts WHERE ID=$id");
//! "#;
//! assert!(analyze_source("demo", clean, &AnalyzerConfig::default()).taint_free);
//! ```

pub mod analyzer;
pub mod harden;
pub mod lattice;
pub mod querymodel;
pub mod report;
pub mod storeflow;
pub mod summaries;

pub use analyzer::{analyze_source, AnalyzerConfig, Finding, TaintSummary};
pub use harden::{
    harden_app, harden_source, unparameterized_sink_lint, HardenReport, RouteHarden, SkipReason,
    UnparameterizedSink,
};
pub use lattice::{AbstractVal, Taint};
pub use querymodel::{app_query_models, infer_source, EndpointModel, SiteModel};
pub use report::{render_finding, render_summary};
pub use storeflow::{
    analyze_store_flow, CellRemediation, ProvenanceChain, RouteClass, RouteFlow, StoreEvent,
    StoreFlowReport,
};
pub use summaries::{effect_of, is_sink, Effect};

use joza_webapp::app::WebApp;
use joza_webapp::transform::InputTransform;

/// Analyzes every routable endpoint of a web application, in slug order.
///
/// The analyzer configuration is derived from the application's
/// framework-level input pipeline: when magic quotes escape every input
/// before plugin code runs, source reads start at
/// [`Taint::MaybeTainted`].
pub fn analyze_app(app: &WebApp) -> Vec<TaintSummary> {
    let config = AnalyzerConfig {
        input_escaped: app.input_pipeline.contains(&InputTransform::MagicQuotes),
        ..AnalyzerConfig::default()
    };
    let mut plugins: Vec<_> = app.plugins().collect();
    plugins.sort_by(|a, b| a.name.cmp(&b.name));
    plugins.iter().map(|p| analyze_source(&p.name, &p.source, &config)).collect()
}

/// Route names provably safe to skip dynamic checking for — the feed for
/// `joza_webapp::gate::StaticFastPath::new` and
/// `joza_core::JozaBuilder::taint_free_routes`.
///
/// This is the *persistence-aware* criterion: the route's sinks must
/// receive no attacker data even when every cell the cross-route
/// store/load fixpoint ([`analyze_store_flow`]) marks dirty is treated as
/// a taint source at the route's load sites. First-order taint-freedom
/// alone is not enough — a route that re-interpolates stored data is
/// second-order-reachable and must stay on the dynamic path.
pub fn taint_free_routes(app: &WebApp) -> Vec<String> {
    analyze_store_flow(app).taint_free_routes()
}
