//! The taint lattice and abstract values.
//!
//! Values are abstracted to a point on the three-level lattice
//! `Untainted < MaybeTainted < Tainted`, together with *provenance* (which
//! request parameters can reach the value) and a bounded human-readable
//! flow trace used in findings.

use std::collections::BTreeSet;

/// Three-point taint lattice: `Untainted < MaybeTainted < Tainted`.
///
/// `MaybeTainted` marks attacker-influenced bytes that have passed
/// through an *escaping* sanitizer (magic quotes,
/// `mysql_real_escape_string`, …): the common case is safe, but escaping
/// is context-sensitive (numeric contexts, `stripslashes`, second-order
/// decodes), so it is not proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Taint {
    /// Provably free of attacker-controlled bytes.
    #[default]
    Untainted,
    /// Attacker bytes that passed through an escaping sanitizer.
    MaybeTainted,
    /// Raw attacker-controlled bytes.
    Tainted,
}

impl Taint {
    /// Least upper bound.
    pub fn join(self, other: Taint) -> Taint {
        self.max(other)
    }

    /// Short display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Taint::Untainted => "untainted",
            Taint::MaybeTainted => "maybe-tainted",
            Taint::Tainted => "tainted",
        }
    }
}

/// Longest flow trace kept on an abstract value.
pub const MAX_TRACE: usize = 8;

/// An abstract value: lattice point + provenance + flow trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbstractVal {
    /// Lattice point.
    pub taint: Taint,
    /// Request parameters that can flow into this value, as
    /// `$_GET['id']`-style labels. Sorted (BTreeSet) for determinism.
    pub sources: BTreeSet<String>,
    /// Bounded source→here trace of variable/builtin hops, for findings.
    pub trace: Vec<String>,
}

impl AbstractVal {
    /// An untainted constant.
    pub fn untainted() -> Self {
        AbstractVal::default()
    }

    /// A fresh source read (e.g. `$_GET['id']`).
    pub fn source(label: &str, taint: Taint) -> Self {
        AbstractVal {
            taint,
            sources: BTreeSet::from([label.to_string()]),
            trace: vec![label.to_string()],
        }
    }

    /// Least upper bound: join taints, union provenance, keep the trace
    /// of the more-tainted side (left-biased on ties).
    pub fn join(&self, other: &AbstractVal) -> AbstractVal {
        let mut sources = self.sources.clone();
        sources.extend(other.sources.iter().cloned());
        let trace =
            if other.taint > self.taint || (self.trace.is_empty() && !other.trace.is_empty()) {
                other.trace.clone()
            } else {
                self.trace.clone()
            };
        AbstractVal { taint: self.taint.join(other.taint), sources, trace }
    }

    /// Appends a hop to the flow trace (bounded, deduplicating the tail).
    pub fn push_hop(&mut self, hop: &str) {
        if self.taint == Taint::Untainted {
            return;
        }
        if self.trace.last().map(String::as_str) == Some(hop) {
            return;
        }
        if self.trace.len() < MAX_TRACE {
            self.trace.push(hop.to_string());
        }
    }

    /// Same lattice point and provenance (trace ignored) — the fixpoint
    /// convergence test, which must not depend on the unbounded-ish trace.
    pub fn same_abstract(&self, other: &AbstractVal) -> bool {
        self.taint == other.taint && self.sources == other.sources
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_order_and_join() {
        assert!(Taint::Untainted < Taint::MaybeTainted);
        assert!(Taint::MaybeTainted < Taint::Tainted);
        assert_eq!(Taint::Untainted.join(Taint::Tainted), Taint::Tainted);
        assert_eq!(Taint::MaybeTainted.join(Taint::Untainted), Taint::MaybeTainted);
        assert_eq!(Taint::MaybeTainted.join(Taint::MaybeTainted), Taint::MaybeTainted);
    }

    #[test]
    fn join_unions_sources_and_prefers_tainted_trace() {
        let a = AbstractVal::source("$_GET['a']", Taint::MaybeTainted);
        let b = AbstractVal::source("$_POST['b']", Taint::Tainted);
        let j = a.join(&b);
        assert_eq!(j.taint, Taint::Tainted);
        assert_eq!(j.sources.len(), 2);
        assert_eq!(j.trace, vec!["$_POST['b']".to_string()]);
    }

    #[test]
    fn trace_is_bounded() {
        let mut v = AbstractVal::source("$_GET['x']", Taint::Tainted);
        for i in 0..50 {
            v.push_hop(&format!("$v{i}"));
        }
        assert_eq!(v.trace.len(), MAX_TRACE);
    }

    #[test]
    fn untainted_values_carry_no_trace() {
        let mut v = AbstractVal::untainted();
        v.push_hop("$x");
        assert!(v.trace.is_empty());
    }
}
