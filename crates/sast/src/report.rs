//! Deterministic text rendering of analysis results, shared by the
//! `sast_report` benchmark binary and the snapshot tests.

use crate::analyzer::{Finding, TaintSummary};

/// Renders one finding as a stable two-line record.
pub fn render_finding(f: &Finding) -> String {
    let sources = if f.sources.is_empty() { "<none>".to_string() } else { f.sources.join(", ") };
    let trace = if f.trace.is_empty() { "<direct>".to_string() } else { f.trace.join(" -> ") };
    format!(
        "  [line {:>3}, span {}] {}({}) <- {}\n      flow: {}\n      stmt: {}",
        f.line,
        f.span,
        f.sink,
        f.taint.label(),
        sources,
        trace,
        f.snippet,
    )
}

/// Renders a whole endpoint summary (header plus findings, sorted as the
/// analyzer emitted them).
pub fn render_summary(s: &TaintSummary) -> String {
    let mut out = String::new();
    let verdict = if let Some(e) = &s.parse_error {
        format!("parse error ({e})")
    } else if s.taint_free {
        "taint-free".to_string()
    } else {
        format!("{} tainted flow(s)", s.findings.len())
    };
    out.push_str(&format!("endpoint {}: {} sink(s), {}\n", s.endpoint, s.sink_count, verdict));
    for f in &s.findings {
        out.push_str(&render_finding(f));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::analyzer::{analyze_source, AnalyzerConfig};

    #[test]
    fn rendering_is_deterministic() {
        let src = r#"
            $a = $_GET['a'];
            $b = $_POST['b'];
            mysql_query("SELECT * FROM t WHERE x='$a' AND y='$b'");
        "#;
        let s = analyze_source("demo", src, &AnalyzerConfig::default());
        let r1 = super::render_summary(&s);
        let r2 = super::render_summary(&analyze_source("demo", src, &AnalyzerConfig::default()));
        assert_eq!(r1, r2);
        assert!(r1.contains("endpoint demo: 1 sink(s), 1 tainted flow(s)"));
        assert!(r1.contains("$_GET['a'], $_POST['b']"));
    }
}
