//! Persistence-aware static taint: the cross-route store/load fixpoint.
//!
//! The per-route analyzer ([`crate::analyzer`]) answers *"can this
//! request's own input reach this sink?"* — first-order flows. Second-order
//! SQL injection stores the payload first (an `INSERT`/`UPDATE` whose
//! value came from a request) and weaponizes it later, when another route
//! reads the cell back and splices the raw stored bytes into a query.
//! Magic quotes do not help: the framework escapes the *plant* request,
//! but SQL parsing unescapes the value on the way into the table, so the
//! database holds raw attacker bytes.
//!
//! This pass builds a **store/load graph over `(table, column)` cells**:
//!
//! 1. Every sink site's inferred query templates
//!    ([`crate::querymodel::infer_source`]) are instantiated with unique
//!    probe markers and parsed by `joza_sqlparse`. `INSERT`/`UPDATE`
//!    statements are *store sites* (the marker-bearing columns receive
//!    dynamic data); `SELECT` statements are *load sites* (the projected
//!    columns flow back into the application through row fetches).
//! 2. A cell turns **dirty** when a store site writes it a value the
//!    taint analysis says exceeds `Untainted` at that site. `MaybeTainted`
//!    (escaped) writes dirty the cell too — escaping survives neither SQL
//!    parsing nor the round trip.
//! 3. Routes are re-analyzed with [`AnalyzerConfig::db_sources`] marking
//!    every load site whose cells intersect the dirty set; fetched rows
//!    then carry `db:<table>.<column>` taint, and any sink they reach is
//!    a second-order flow. New findings can dirty new cells (a route can
//!    copy stored data onward), so the whole thing iterates to a
//!    **cross-route fixpoint** — monotone in the (finite) dirty set.
//!
//! Unknowns stay conservative: a site whose construction collapsed to ⊤
//! (no templates), whose probe instantiation does not parse, or whose
//! route does not parse at all is treated as *both* a load from every
//! dirty cell and — if tainted data reaches it — a store to the wildcard
//! cell `(*, *)`, which dirties everything (`db_query`'s
//! placeholder-splice surface really can write arbitrary tables once
//! stacked queries execute). Being dirty is harmless for routes that only
//! echo what they fetch: a route is classified second-order-reachable
//! only when the *re-analysis with DB sources* finds a tainted sink.
//!
//! The report feeds three consumers: [`crate::taint_free_routes`] (the
//! static fast path must not fire on second-order-reachable routes),
//! `joza_core`'s deployment (the dirty-cell set the dynamic gate uses to
//! capture DB-sourced inputs), and the remediation worklist rendered by
//! the `sast_report`/`harden` bins.

use crate::analyzer::{analyze_source, AnalyzerConfig, TaintSummary};
use crate::lattice::Taint;
use crate::querymodel::{infer_source, SiteModel};
use joza_sqlparse::ast::{Expr as SqlExpr, Projection, SelectStatement, Statement, TableRef};
use joza_sqlparse::template::{QueryTemplate, TemplatePart};
use joza_sqlparse::Value;
use joza_webapp::app::WebApp;
use joza_webapp::transform::InputTransform;
use std::collections::{BTreeMap, BTreeSet};

/// A storage location: `(table, column)`, lowercased. `"*"` in either
/// position is a wildcard (whole table / every table).
pub type Cell = (String, String);

/// The wildcard column marker.
pub const ANY: &str = "*";

/// Classification of one route after the cross-route fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteClass {
    /// No attacker data — request-borne or stored — reaches any sink.
    /// Exactly the routes the static fast path may skip.
    Clean,
    /// Request input reaches a sink, but stored data never does: the
    /// route is dangerous first-order only.
    FirstOrderOnly,
    /// Data read from attacker-reachable cells can reach a sink: the
    /// route is exploitable (at least) through the database.
    SecondOrderReachable,
}

impl std::fmt::Display for RouteClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RouteClass::Clean => "clean",
            RouteClass::FirstOrderOnly => "first-order-only",
            RouteClass::SecondOrderReachable => "second-order-reachable",
        })
    }
}

/// One tainted write into a cell — the *plant* half of a provenance chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEvent {
    /// The dirtied cell.
    pub cell: Cell,
    /// Route performing the write.
    pub route: String,
    /// Preorder statement id of the store sink.
    pub stmt_id: usize,
    /// Sink builtin name performing the write, lowercased.
    pub sink: String,
    /// 1-based source line of the store sink.
    pub line: usize,
    /// Taint of the written value at the site.
    pub taint: Taint,
    /// Source labels of the written value (request parameters, or
    /// `db:`-cells for relayed stores).
    pub sources: Vec<String>,
    /// First line of the store statement's source text.
    pub snippet: String,
}

/// A span-level second-order provenance chain:
/// source request → store sink → load site → query sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenanceChain {
    /// The cell the payload travels through.
    pub cell: Cell,
    /// The write that dirtied the cell (plant).
    pub store: StoreEvent,
    /// Route containing the load and the downstream sink (trigger).
    pub load_route: String,
    /// Preorder statement id of the load site.
    pub load_stmt_id: usize,
    /// 1-based source line of the load site.
    pub load_line: usize,
    /// Preorder statement id of the downstream query sink.
    pub sink_stmt_id: usize,
    /// 1-based source line of the downstream query sink.
    pub sink_line: usize,
    /// First line of the downstream sink's source text.
    pub sink_snippet: String,
}

impl ProvenanceChain {
    /// One-line rendering of the chain.
    pub fn render(&self) -> String {
        format!(
            "{sources} -> store {store_route}:{store_line} [{table}.{column}] -> load {load_route}:{load_line} -> sink {load_route}:{sink_line} {snippet}",
            sources = self.store.sources.join("+"),
            store_route = self.store.route,
            store_line = self.store.line,
            table = self.cell.0,
            column = self.cell.1,
            load_route = self.load_route,
            load_line = self.load_line,
            sink_line = self.sink_line,
            snippet = self.sink_snippet,
        )
    }
}

/// Per-route result of the persistence-aware pass.
#[derive(Debug, Clone)]
pub struct RouteFlow {
    /// Route slug.
    pub route: String,
    /// Final classification.
    pub class: RouteClass,
    /// Whether the *first-order* analysis (no DB sources) proved the
    /// route taint-free — the pre-PR-9 fast-path criterion.
    pub first_order_taint_free: bool,
    /// The route's taint summary under the final dirty set (DB sources
    /// installed at every dirty load site).
    pub summary: TaintSummary,
    /// Cells this route writes tainted data into (sorted, deduped).
    pub store_cells: Vec<Cell>,
    /// Cells this route's load sites read (sorted, deduped; may contain
    /// wildcards).
    pub load_cells: Vec<Cell>,
    /// Sink sites whose templates could not be classified (⊤ model,
    /// unparsable probe) — treated conservatively.
    pub unknown_sites: usize,
    /// Second-order provenance chains ending in this route's sinks.
    pub chains: Vec<ProvenanceChain>,
}

/// The cross-route fixpoint result for one application.
#[derive(Debug, Clone)]
pub struct StoreFlowReport {
    /// Per-route flows, sorted by route slug.
    pub routes: Vec<RouteFlow>,
    /// The final dirty set. May contain wildcard cells.
    pub dirty: BTreeSet<Cell>,
    /// Every tainted write observed, sorted by (cell, route, stmt).
    pub stores: Vec<StoreEvent>,
    /// True when an unknown/unparsable tainted site forced the wildcard
    /// cell `(*, *)` dirty (everything attacker-reachable).
    pub top_poisoned: bool,
    /// Routes that forced the wildcard poison.
    pub poisoned_by: Vec<String>,
    /// Fixpoint rounds until stabilization.
    pub iterations: usize,
}

impl StoreFlowReport {
    /// The flow for one route, if analyzed.
    pub fn get(&self, route: &str) -> Option<&RouteFlow> {
        self.routes.iter().find(|r| r.route == route)
    }

    /// Routes classified [`RouteClass::SecondOrderReachable`], sorted.
    pub fn second_order_routes(&self) -> Vec<String> {
        self.routes
            .iter()
            .filter(|r| r.class == RouteClass::SecondOrderReachable)
            .map(|r| r.route.clone())
            .collect()
    }

    /// Routes whose sinks provably receive no attacker data even with
    /// every dirty cell treated as a source — the only routes the static
    /// fast path may still skip.
    pub fn taint_free_routes(&self) -> Vec<String> {
        self.routes
            .iter()
            .filter(|r| r.class == RouteClass::Clean)
            .map(|r| r.route.clone())
            .collect()
    }

    /// The dirty-cell set in the form `joza_core`'s deployment consumes
    /// (wildcards included; the dynamic gate honors them).
    pub fn dirty_cells(&self) -> BTreeSet<(String, String)> {
        self.dirty.clone()
    }

    /// The manual-remediation worklist: one entry per dirty cell, with
    /// the writes that dirty it and the second-order routes that read it.
    pub fn remediation_worklist(&self) -> Vec<CellRemediation> {
        let mut out: Vec<CellRemediation> = Vec::new();
        for cell in &self.dirty {
            let writers: Vec<StoreEvent> =
                self.stores.iter().filter(|s| &s.cell == cell).cloned().collect();
            let readers: Vec<String> = self
                .routes
                .iter()
                .filter(|r| {
                    r.class == RouteClass::SecondOrderReachable
                        && r.chains.iter().any(|c| &c.cell == cell)
                })
                .map(|r| r.route.clone())
                .collect();
            out.push(CellRemediation { cell: cell.clone(), writers, readers });
        }
        out
    }
}

/// One dirty cell's remediation entry (parameterize the writers, or
/// escape-on-read at the readers).
#[derive(Debug, Clone)]
pub struct CellRemediation {
    /// The attacker-reachable cell.
    pub cell: Cell,
    /// Tainted writes into the cell.
    pub writers: Vec<StoreEvent>,
    /// Second-order-reachable routes reading the cell.
    pub readers: Vec<String>,
}

// ---------------------------------------------------------------------
// Site classification: templates → store/load cells.
// ---------------------------------------------------------------------

/// What one sink site does to the store, across all its templates.
#[derive(Debug, Clone, Default)]
struct SiteAccess {
    /// Cells that receive a dynamic (hole) value in some template.
    stores: BTreeSet<Cell>,
    /// Cells whose contents some template projects back out.
    loads: BTreeSet<Cell>,
    /// Some template (or the whole site) defied classification.
    unknown: bool,
}

/// Probe marker base: distinctive digit strings no lab query contains.
const MARKER_BASE: u64 = 73_309_100;

fn marker(i: usize) -> String {
    (MARKER_BASE + i as u64).to_string()
}

/// Instantiates a template with one unique numeric marker per hole.
/// `rep_once` controls whether `Rep` bodies are emitted once or elided —
/// both variants are tried because loop-built list tails may carry
/// separators that only parse in one of the two shapes.
fn instantiate_with_markers(t: &QueryTemplate, rep_once: bool) -> (String, Vec<String>) {
    fn walk(parts: &[TemplatePart], rep_once: bool, out: &mut String, markers: &mut Vec<String>) {
        for p in parts {
            match p {
                TemplatePart::Lit(s) => out.push_str(s),
                TemplatePart::Hole => {
                    let m = marker(markers.len());
                    out.push_str(&m);
                    markers.push(m);
                }
                TemplatePart::Rep(body) => {
                    if rep_once {
                        walk(body, rep_once, out, markers);
                    }
                }
            }
        }
    }
    let mut out = String::new();
    let mut markers = Vec::new();
    walk(&t.parts, rep_once, &mut out, &mut markers);
    (out, markers)
}

fn value_contains_marker(v: &Value, markers: &[String]) -> bool {
    let rendered = match v {
        Value::Str(s) => s.clone(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        _ => return false,
    };
    markers.iter().any(|m| rendered.contains(m.as_str()))
}

fn expr_contains_marker(e: &SqlExpr, markers: &[String]) -> bool {
    let mut found = false;
    walk_expr(e, &mut |x| {
        if let SqlExpr::Literal(v) = x {
            if value_contains_marker(v, markers) {
                found = true;
            }
        }
    });
    found
}

/// Calls `f` on every sub-expression of `e`, preorder.
fn walk_expr(e: &SqlExpr, f: &mut dyn FnMut(&SqlExpr)) {
    f(e);
    match e {
        SqlExpr::Unary { expr, .. } | SqlExpr::IsNull { expr, .. } => walk_expr(expr, f),
        SqlExpr::Binary { left, right, .. } => {
            walk_expr(left, f);
            walk_expr(right, f);
        }
        SqlExpr::Function { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        SqlExpr::InList { expr, list, .. } => {
            walk_expr(expr, f);
            for x in list {
                walk_expr(x, f);
            }
        }
        SqlExpr::InSubquery { expr, .. } => walk_expr(expr, f),
        SqlExpr::Between { expr, low, high, .. } => {
            walk_expr(expr, f);
            walk_expr(low, f);
            walk_expr(high, f);
        }
        SqlExpr::Like { expr, pattern, .. } => {
            walk_expr(expr, f);
            walk_expr(pattern, f);
        }
        SqlExpr::Case { operand, branches, else_arm } => {
            if let Some(o) = operand {
                walk_expr(o, f);
            }
            for (w, t) in branches {
                walk_expr(w, f);
                walk_expr(t, f);
            }
            if let Some(x) = else_arm {
                walk_expr(x, f);
            }
        }
        _ => {}
    }
}

fn lc(s: &str) -> String {
    s.to_ascii_lowercase()
}

/// Tables visible in a `SELECT` body: `(alias-or-name → table)` pairs.
fn select_tables(sel: &SelectStatement) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut push = |t: &TableRef| {
        let name = lc(&t.name);
        let alias = t.alias.as_deref().map(lc).unwrap_or_else(|| name.clone());
        out.push((alias, name));
    };
    if let Some(t) = &sel.from {
        push(t);
    }
    for j in &sel.joins {
        push(&j.table);
    }
    out
}

/// Cells a `SELECT` projects back to the application (recursing into
/// `UNION` arms and projected subqueries). Only *projected* columns count:
/// a stored payload re-enters query text through fetched values, and
/// fetched values come from the projection list.
fn select_loads(sel: &SelectStatement, out: &mut BTreeSet<Cell>) {
    let tables = select_tables(sel);
    let resolve = |qualifier: Option<&str>, col: &str, out: &mut BTreeSet<Cell>| match qualifier {
        Some(q) => {
            let q = lc(q);
            match tables.iter().find(|(a, _)| *a == q) {
                Some((_, t)) => {
                    out.insert((t.clone(), lc(col)));
                }
                // Unknown qualifier: conservative whole-table unknown.
                None => {
                    out.insert((q, lc(col)));
                }
            }
        }
        None => {
            // Unqualified: attributable to any table in scope.
            for (_, t) in &tables {
                out.insert((t.clone(), lc(col)));
            }
        }
    };
    for p in &sel.projections {
        match p {
            Projection::Wildcard => {
                for (_, t) in &tables {
                    out.insert((t.clone(), ANY.to_string()));
                }
            }
            Projection::QualifiedWildcard(q) => {
                let q = lc(q);
                let t = tables.iter().find(|(a, _)| *a == q).map(|(_, t)| t.clone()).unwrap_or(q);
                out.insert((t, ANY.to_string()));
            }
            Projection::Expr { expr, .. } => {
                walk_expr(expr, &mut |x| match x {
                    SqlExpr::Column(c) => {
                        resolve(c.table.as_deref(), &c.name, out);
                    }
                    SqlExpr::Subquery(sub) | SqlExpr::Exists(sub) => select_loads(sub, out),
                    _ => {}
                });
            }
        }
    }
    for (_, arm) in &sel.set_ops {
        select_loads(arm, out);
    }
}

/// Classifies one template's parsed form into store/load cells.
fn classify_template(t: &QueryTemplate, acc: &mut SiteAccess) {
    for rep_once in [true, false] {
        let (sql, markers) = instantiate_with_markers(t, rep_once);
        let Ok(stmt) = joza_sqlparse::parse(&sql) else { continue };
        match stmt {
            Statement::Select(sel) => {
                let mut loads = BTreeSet::new();
                select_loads(&sel, &mut loads);
                acc.loads.extend(loads);
            }
            Statement::Insert(ins) => {
                let table = lc(&ins.table);
                for row in &ins.rows {
                    for (i, expr) in row.iter().enumerate() {
                        if expr_contains_marker(expr, &markers) {
                            let col = ins
                                .columns
                                .get(i)
                                .map(|c| lc(c))
                                // Positional insert: unknown column.
                                .unwrap_or_else(|| ANY.to_string());
                            acc.stores.insert((table.clone(), col));
                        }
                    }
                }
            }
            Statement::Update(upd) => {
                let table = lc(&upd.table);
                for (col, expr) in &upd.assignments {
                    if expr_contains_marker(expr, &markers) {
                        acc.stores.insert((table.clone(), lc(col)));
                    }
                }
            }
            Statement::Delete(_) => {}
        }
        return;
    }
    // Neither instantiation parsed: the runtime shape is out of reach.
    acc.unknown = true;
}

fn classify_site(site: &SiteModel) -> SiteAccess {
    let mut acc = SiteAccess::default();
    match &site.templates {
        None => acc.unknown = true,
        Some(ts) => {
            for t in ts {
                classify_template(t, &mut acc);
            }
        }
    }
    acc
}

// ---------------------------------------------------------------------
// The cross-route fixpoint.
// ---------------------------------------------------------------------

/// True when `cell` (a concrete or wildcard read) hits the dirty set.
fn covered(dirty: &BTreeSet<Cell>, cell: &Cell) -> bool {
    if dirty.contains(&(ANY.to_string(), ANY.to_string())) {
        return true;
    }
    if cell.1 == ANY {
        // Whole-table read: dirty if any dirty cell lives in the table.
        return dirty.iter().any(|(t, _)| *t == cell.0);
    }
    dirty.contains(cell) || dirty.contains(&(cell.0.clone(), ANY.to_string()))
}

fn cell_label(cell: &Cell) -> String {
    format!("db:{}.{}", cell.0, cell.1)
}

/// Fixpoint safety bound; the dirty set is finite and growth is monotone,
/// so convergence happens in ≤ |cells| + 2 rounds.
const MAX_ROUNDS: usize = 64;

/// Runs the persistence-aware cross-route analysis over every routable
/// endpoint of `app`.
pub fn analyze_store_flow(app: &WebApp) -> StoreFlowReport {
    let input_escaped = app.input_pipeline.contains(&InputTransform::MagicQuotes);
    let mut plugins: Vec<_> = app.plugins().collect();
    plugins.sort_by(|a, b| a.name.cmp(&b.name));

    // Phase 1: per-route site classification (once; templates are
    // independent of the dirty set).
    struct RouteInfo<'a> {
        name: &'a str,
        source: &'a str,
        sites: BTreeMap<usize, SiteAccess>,
        /// Preorder statement spans (for load-site line provenance).
        spans: Vec<joza_phpsim::span::Span>,
        parse_error: bool,
    }
    let infos: Vec<RouteInfo> = plugins
        .iter()
        .map(|p| {
            let model = infer_source(&p.name, &p.source);
            let sites = model.sites.iter().map(|s| (s.stmt_id, classify_site(s))).collect();
            let spans = joza_phpsim::parser::parse_program_spanned(&p.source)
                .map(|(_, spans)| spans)
                .unwrap_or_default();
            RouteInfo {
                name: &p.name,
                source: &p.source,
                sites,
                spans,
                parse_error: model.parse_error,
            }
        })
        .collect();

    // Phase 2: iterate store→dirty→load→taint to a fixpoint.
    let mut dirty: BTreeSet<Cell> = BTreeSet::new();
    let mut stores: Vec<StoreEvent> = Vec::new();
    let mut top_poisoned = false;
    let mut poisoned_by: BTreeSet<String> = BTreeSet::new();
    let mut summaries: Vec<TaintSummary> = Vec::new();
    let mut db_source_maps: Vec<BTreeMap<usize, Vec<String>>> = Vec::new();
    let mut iterations = 0usize;

    for round in 0..MAX_ROUNDS {
        iterations = round + 1;
        let mut changed = false;
        summaries.clear();
        db_source_maps.clear();

        for info in &infos {
            // Install DB sources at every load (or unknown) site whose
            // cells hit the dirty set.
            let mut db_sources: BTreeMap<usize, Vec<String>> = BTreeMap::new();
            for (stmt_id, access) in &info.sites {
                let mut labels: BTreeSet<String> = BTreeSet::new();
                for cell in &access.loads {
                    if covered(&dirty, cell) {
                        labels.insert(cell_label(cell));
                    }
                }
                if access.unknown {
                    // An unclassified site may read anything dirty.
                    for cell in &dirty {
                        labels.insert(cell_label(cell));
                    }
                }
                if !labels.is_empty() {
                    db_sources.insert(*stmt_id, labels.into_iter().collect());
                }
            }
            let config = AnalyzerConfig { input_escaped, db_sources: db_sources.clone() };
            let summary = analyze_source(info.name, info.source, &config);

            // Harvest tainted writes.
            if summary.parse_error.is_some() && !top_poisoned {
                // Unparsable route: could write anything, anywhere.
                top_poisoned = true;
                poisoned_by.insert(info.name.to_string());
                dirty.insert((ANY.to_string(), ANY.to_string()));
                changed = true;
            }
            for finding in &summary.findings {
                let Some(access) = info.sites.get(&finding.stmt_id) else { continue };
                if access.unknown {
                    if !top_poisoned {
                        top_poisoned = true;
                        dirty.insert((ANY.to_string(), ANY.to_string()));
                        changed = true;
                    }
                    poisoned_by.insert(info.name.to_string());
                }
                for cell in &access.stores {
                    let event = StoreEvent {
                        cell: cell.clone(),
                        route: info.name.to_string(),
                        stmt_id: finding.stmt_id,
                        sink: finding.sink.clone(),
                        line: finding.line,
                        taint: finding.taint,
                        sources: finding.sources.clone(),
                        snippet: finding.snippet.clone(),
                    };
                    if dirty.insert(cell.clone()) {
                        changed = true;
                    }
                    if !stores.iter().any(|s| {
                        s.cell == event.cell && s.route == event.route && s.stmt_id == event.stmt_id
                    }) {
                        stores.push(event);
                        changed = true;
                    }
                }
            }
            summaries.push(summary);
            db_source_maps.push(db_sources);
        }
        if !changed {
            break;
        }
    }

    // Phase 3: classify, and build provenance chains.
    stores.sort_by(|a, b| (&a.cell, &a.route, a.stmt_id).cmp(&(&b.cell, &b.route, b.stmt_id)));
    let mut routes = Vec::with_capacity(infos.len());
    for (idx, info) in infos.iter().enumerate() {
        let summary = summaries[idx].clone();
        let db_sources = &db_source_maps[idx];
        let first_order = analyze_source(
            info.name,
            info.source,
            &AnalyzerConfig { input_escaped, ..AnalyzerConfig::default() },
        );

        let mut chains = Vec::new();
        for finding in &summary.findings {
            for src in &finding.sources {
                let Some(cell_name) = src.strip_prefix("db:") else { continue };
                let (table, column) = cell_name.split_once('.').unwrap_or((cell_name, ANY));
                let cell: Cell = (table.to_string(), column.to_string());
                // Which load site introduced this label?
                let load_site = db_sources
                    .iter()
                    .find(|(_, labels)| labels.iter().any(|l| l == src))
                    .map(|(id, _)| *id);
                let Some(load_stmt_id) = load_site else { continue };
                let load_line =
                    info.spans.get(load_stmt_id).map(|s| s.line(info.source)).unwrap_or(0);
                // Every store event that can have dirtied this cell.
                for store in stores.iter().filter(|s| {
                    s.cell == cell
                        || s.cell == (cell.0.clone(), ANY.to_string())
                        || s.cell == (ANY.to_string(), ANY.to_string())
                }) {
                    chains.push(ProvenanceChain {
                        cell: cell.clone(),
                        store: store.clone(),
                        load_route: info.name.to_string(),
                        load_stmt_id,
                        load_line,
                        sink_stmt_id: finding.stmt_id,
                        sink_line: finding.line,
                        sink_snippet: finding.snippet.clone(),
                    });
                }
            }
        }
        chains.sort_by(|a, b| {
            (a.sink_stmt_id, &a.cell, &a.store.route, a.store.stmt_id).cmp(&(
                b.sink_stmt_id,
                &b.cell,
                &b.store.route,
                b.store.stmt_id,
            ))
        });
        chains.dedup();

        let has_db_finding =
            summary.findings.iter().any(|f| f.sources.iter().any(|s| s.starts_with("db:")));
        let class = if summary.taint_free {
            RouteClass::Clean
        } else if has_db_finding {
            RouteClass::SecondOrderReachable
        } else {
            RouteClass::FirstOrderOnly
        };

        let store_cells: Vec<Cell> = stores
            .iter()
            .filter(|s| s.route == info.name)
            .map(|s| s.cell.clone())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let load_cells: Vec<Cell> = info
            .sites
            .values()
            .flat_map(|a| a.loads.iter().cloned())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let unknown_sites =
            info.sites.values().filter(|a| a.unknown).count() + usize::from(info.parse_error);

        routes.push(RouteFlow {
            route: info.name.to_string(),
            class,
            first_order_taint_free: first_order.taint_free,
            summary,
            store_cells,
            load_cells,
            unknown_sites,
            chains,
        });
    }

    StoreFlowReport {
        routes,
        dirty,
        stores,
        top_poisoned,
        poisoned_by: poisoned_by.into_iter().collect(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_webapp::app::{Plugin, WebApp};

    fn app_of(routes: &[(&str, &str)]) -> WebApp {
        let mut app = WebApp::default();
        for (name, src) in routes {
            app.add_plugin(Plugin::new(name, "1.0", src));
        }
        app
    }

    const STORE_ROUTE: &str = r#"
        $bio = $_POST['bio'];
        mysql_query("INSERT INTO profiles (id, bio) VALUES (1, '" . $bio . "')");
        echo "saved";
    "#;

    const LOAD_ROUTE: &str = r#"
        $r = mysql_query("SELECT bio FROM profiles WHERE id=1");
        $row = mysql_fetch_row($r);
        mysql_query("SELECT * FROM posts WHERE author='" . $row . "'");
    "#;

    const ECHO_ROUTE: &str = r#"
        $r = mysql_query("SELECT bio FROM profiles WHERE id=1");
        $row = mysql_fetch_row($r);
        echo $row;
    "#;

    #[test]
    fn plant_then_trigger_is_second_order_reachable() {
        let app = app_of(&[("plant", STORE_ROUTE), ("trigger", LOAD_ROUTE)]);
        let report = analyze_store_flow(&app);
        assert!(report.dirty.contains(&("profiles".to_string(), "bio".to_string())));
        assert!(!report.top_poisoned);

        let plant = report.get("plant").expect("plant analyzed");
        assert_eq!(plant.class, RouteClass::FirstOrderOnly);
        assert_eq!(plant.store_cells, vec![("profiles".to_string(), "bio".to_string())]);

        let trigger = report.get("trigger").expect("trigger analyzed");
        assert_eq!(trigger.class, RouteClass::SecondOrderReachable);
        assert!(trigger.first_order_taint_free, "no request input reaches its sinks");
        assert_eq!(trigger.chains.len(), 1);
        let chain = &trigger.chains[0];
        assert_eq!(chain.store.route, "plant");
        assert_eq!(chain.cell, ("profiles".to_string(), "bio".to_string()));
        assert!(chain.store.sources.contains(&"$_POST['bio']".to_string()));
        assert!(chain.render().contains("profiles.bio"));
    }

    #[test]
    fn echo_only_reader_stays_clean() {
        // Reading a dirty cell is harmless if the data never re-enters a
        // query — the fast path must keep working for such routes.
        let app = app_of(&[("plant", STORE_ROUTE), ("echo", ECHO_ROUTE)]);
        let report = analyze_store_flow(&app);
        assert!(report.dirty.contains(&("profiles".to_string(), "bio".to_string())));
        let echo = report.get("echo").expect("echo analyzed");
        assert_eq!(echo.class, RouteClass::Clean);
        assert_eq!(report.taint_free_routes(), vec!["echo".to_string()]);
    }

    #[test]
    fn clean_store_does_not_dirty() {
        let clean_store = r#"
            $n = intval($_POST['n']);
            mysql_query("INSERT INTO counters (id, n) VALUES (1, '" . $n . "')");
        "#;
        let app = app_of(&[("clean-store", clean_store), ("trigger", LOAD_ROUTE)]);
        let report = analyze_store_flow(&app);
        assert!(report.dirty.is_empty(), "sanitized writes dirty nothing");
        assert_eq!(report.get("trigger").unwrap().class, RouteClass::Clean);
    }

    #[test]
    fn update_assignments_dirty_their_columns() {
        let updater = r#"
            $sig = $_GET['sig'];
            mysql_query("UPDATE profiles SET sig='" . $sig . "' WHERE id=1");
        "#;
        let app = app_of(&[("updater", updater)]);
        let report = analyze_store_flow(&app);
        assert_eq!(
            report.dirty.iter().cloned().collect::<Vec<_>>(),
            vec![("profiles".to_string(), "sig".to_string())]
        );
    }

    #[test]
    fn where_only_taint_does_not_dirty() {
        // Tainted WHERE, clean SET: the *stored value* is static.
        let updater = r#"
            $id = $_GET['id'];
            mysql_query("UPDATE profiles SET flagged='yes' WHERE id=" . $id);
        "#;
        let app = app_of(&[("updater", updater)]);
        let report = analyze_store_flow(&app);
        assert!(report.dirty.is_empty());
        assert_eq!(report.get("updater").unwrap().class, RouteClass::FirstOrderOnly);
    }

    #[test]
    fn escaped_store_still_dirties() {
        // Magic-quotes-escaped writes land raw in the table (SQL parsing
        // unescapes); MaybeTainted at the store must dirty the cell.
        let mut app = WebApp::default();
        app.input_pipeline = joza_webapp::transform::TransformPipeline::wordpress();
        app.add_plugin(Plugin::new("plant", "1.0", STORE_ROUTE));
        app.add_plugin(Plugin::new("trigger", "1.0", LOAD_ROUTE));
        let report = analyze_store_flow(&app);
        assert!(report.dirty.contains(&("profiles".to_string(), "bio".to_string())));
        assert_eq!(report.get("trigger").unwrap().class, RouteClass::SecondOrderReachable);
    }

    #[test]
    fn relay_reaches_transitive_fixpoint() {
        // plant → t1; relay copies t1 → t2; trigger reads t2. Two rounds
        // of the fixpoint are needed to see the trigger.
        let relay = r#"
            $r = mysql_query("SELECT bio FROM profiles WHERE id=1");
            $row = mysql_fetch_row($r);
            mysql_query("INSERT INTO archive (id, old_bio) VALUES (2, '" . $row . "')");
        "#;
        let trigger2 = r#"
            $r = mysql_query("SELECT old_bio FROM archive WHERE id=2");
            $row = mysql_fetch_row($r);
            mysql_query("SELECT * FROM posts WHERE author='" . $row . "'");
        "#;
        let app = app_of(&[("plant", STORE_ROUTE), ("relay", relay), ("trigger2", trigger2)]);
        let report = analyze_store_flow(&app);
        assert!(report.dirty.contains(&("archive".to_string(), "old_bio".to_string())));
        let t = report.get("trigger2").expect("trigger2");
        assert_eq!(t.class, RouteClass::SecondOrderReachable);
        assert!(report.iterations >= 2);
        // The relay itself is second-order reachable too (stored data
        // reaches its INSERT sink).
        assert_eq!(report.get("relay").unwrap().class, RouteClass::SecondOrderReachable);
    }

    #[test]
    fn unknown_site_poisons_conservatively() {
        let unknown = r#"
            $ids = $_GET['ids'];
            db_query("SELECT name FROM nodes WHERE id IN (:ids)", array(':ids' => $ids));
        "#;
        let app = app_of(&[("unknown", unknown), ("trigger", LOAD_ROUTE)]);
        let report = analyze_store_flow(&app);
        assert!(report.top_poisoned);
        assert_eq!(report.poisoned_by, vec!["unknown".to_string()]);
        // Everything is reachable now; the trigger re-interpolates, so it
        // is flagged — but a pure echo route would still be Clean.
        assert_eq!(report.get("trigger").unwrap().class, RouteClass::SecondOrderReachable);
    }

    #[test]
    fn worklist_names_writers_and_readers() {
        let app = app_of(&[("plant", STORE_ROUTE), ("trigger", LOAD_ROUTE)]);
        let report = analyze_store_flow(&app);
        let worklist = report.remediation_worklist();
        assert_eq!(worklist.len(), 1);
        let entry = &worklist[0];
        assert_eq!(entry.cell, ("profiles".to_string(), "bio".to_string()));
        assert_eq!(entry.writers.len(), 1);
        assert_eq!(entry.writers[0].route, "plant");
        assert_eq!(entry.readers, vec!["trigger".to_string()]);
    }

    #[test]
    fn template_marker_instantiation_classifies_selects_and_inserts() {
        let t = QueryTemplate {
            parts: vec![
                TemplatePart::Lit("INSERT INTO t (a, b) VALUES ('".to_string()),
                TemplatePart::Hole,
                TemplatePart::Lit("', 'static')".to_string()),
            ],
        };
        let mut acc = SiteAccess::default();
        classify_template(&t, &mut acc);
        assert!(!acc.unknown);
        assert_eq!(
            acc.stores.iter().cloned().collect::<Vec<_>>(),
            vec![("t".to_string(), "a".to_string())]
        );

        let s = QueryTemplate {
            parts: vec![
                TemplatePart::Lit(
                    "SELECT x, y FROM t1 JOIN t2 ON t1.id=t2.id WHERE q='".to_string(),
                ),
                TemplatePart::Hole,
                TemplatePart::Lit("'".to_string()),
            ],
        };
        let mut acc = SiteAccess::default();
        classify_template(&s, &mut acc);
        assert!(!acc.unknown);
        // Unqualified x/y attribute to both tables.
        assert_eq!(acc.loads.len(), 4);
    }
}
