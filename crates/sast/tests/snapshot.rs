//! Snapshot tests: the rendered report for corpus plugins is stable down
//! to the byte. Findings are ordered by (endpoint, span, sink), so any
//! nondeterminism in the analyzer or renderer shows up as a diff here.

use joza_lab::build_lab;
use joza_sast::{analyze_app, render_summary};

fn rendered(endpoint: &str) -> String {
    let lab = build_lab();
    let summaries = analyze_app(&lab.server.app);
    let s = summaries
        .iter()
        .find(|s| s.endpoint == endpoint)
        .unwrap_or_else(|| panic!("no summary for {endpoint}"));
    render_summary(s)
}

#[test]
fn tautology_listing_plugin_snapshot() {
    // `a-to-z-category-listing` concatenates $_GET['cat'] (escaped by the
    // magic-quotes pipeline, hence maybe-tainted) into a numeric WHERE.
    let expected = "\
endpoint a-to-z-category-listing: 1 sink(s), 1 tainted flow(s)
  [line   3, span 54..155] mysql_query(maybe-tainted) <- $_GET['cat']
      flow: $_GET['cat'] -> $cat
      stmt: $r = mysql_query(\"SELECT name, info FROM p0_a_to_z_category_listing WHE\u{2026}
";
    assert_eq!(rendered("a-to-z-category-listing"), expected);
}

#[test]
fn base64_decode_plugin_snapshot() {
    // AdRotate base64-decodes its tracking parameter: the decode reverses
    // the framework escaping, so the flow is fully tainted and the trace
    // records the builtin hop.
    let expected = "\
endpoint adrotate: 1 sink(s), 1 tainted flow(s)
  [line   4, span 101..188] mysql_query(tainted) <- $_GET['track']
      flow: $_GET['track'] -> $raw -> base64_decode() -> $data
      stmt: $r = mysql_query(\"SELECT name, info FROM p1_adrotate WHERE hidden=0 AND\u{2026}
";
    assert_eq!(rendered("adrotate"), expected);
}

#[test]
fn rendering_is_reproducible_across_runs() {
    assert_eq!(rendered("adrotate"), rendered("adrotate"));
}
