use joza_sast::{analyze_source, AnalyzerConfig};

#[test]
fn break_mid_loop_state_escapes() {
    let s = analyze_source(
        "t",
        r#"
        $x = '';
        while ($c) {
            $x = $_GET['x'];
            break;
            $x = '';
        }
        mysql_query("SELECT * FROM t WHERE a='$x'");
    "#,
        &AnalyzerConfig::default(),
    );
    // Concretely $x can be tainted at the sink (break exits mid-body).
    assert!(!s.taint_free, "UNSOUND: break mid-body state not joined");
}

#[test]
fn indexed_write_key_taint() {
    let s = analyze_source(
        "t",
        r#"
        $m = array();
        $m[$_GET['k']] = 1;
        $frag = '';
        foreach ($m as $k => $v) {
            $frag .= $k;
        }
        mysql_query("SELECT * FROM t WHERE id IN ($frag)");
    "#,
        &AnalyzerConfig::default(),
    );
    assert!(!s.taint_free, "UNSOUND: tainted array key dropped on indexed write");
}
