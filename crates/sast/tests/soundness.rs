//! Soundness of the static fast path against the full WP-SQLI-LAB corpus.
//!
//! The contract under test: whenever the pipeline's static fast-path
//! stage short-circuits a query to `Allow` without running the dynamic
//! detectors, a dynamic-only engine would also have allowed it — the fast
//! path may only skip work, never change a decision. And attack traffic
//! must always fall through to full dynamic analysis, because no
//! vulnerable route may ever be proven taint-free.

use joza_core::{Joza, JozaConfig};
use joza_lab::{build_lab, verify::request_for, Lab, CLEAN_CORE_ROUTES};
use joza_sast::taint_free_routes;
use joza_webapp::request::HttpRequest;

fn benign_core_requests() -> Vec<HttpRequest> {
    let mut reqs = vec![HttpRequest::get("index")];
    for p in 1..=5 {
        reqs.push(HttpRequest::get("single-post").param("p", &p.to_string()));
    }
    reqs.push(HttpRequest::get("search").param("s", "lorem"));
    reqs.push(
        HttpRequest::post("post-comment")
            .param("comment_post_ID", "2")
            .param("author", "alice")
            .param("comment", "nice post"),
    );
    reqs
}

fn proven_routes(lab: &Lab) -> Vec<String> {
    // Persistence-aware: also excludes routes the store/load fixpoint
    // marks second-order-reachable.
    taint_free_routes(&lab.server.app)
}

/// Every statically-proven route must be a clean core route: the analysis
/// may never certify a plugin that ships a working exploit.
#[test]
fn no_vulnerable_route_is_proven_taint_free() {
    let lab = build_lab();
    let proven = proven_routes(&lab);
    assert!(!proven.is_empty(), "the analysis should prove at least one core route");
    for route in &proven {
        assert!(
            CLEAN_CORE_ROUTES.contains(&route.as_str()),
            "vulnerable route {route} was proven taint-free"
        );
    }
}

/// Allow ⟹ Allow: on benign traffic, every query the fast path
/// short-circuits would also have been allowed by the dynamic gate, so
/// the two configurations produce identical responses.
#[test]
fn fast_path_allow_implies_dynamic_allow_on_benign_traffic() {
    let mut lab = build_lab();
    let proven = proven_routes(&lab);
    let dynamic_only = Joza::install(&lab.server.app, JozaConfig::optimized());
    let fast = Joza::installer(&lab.server.app, JozaConfig::optimized())
        .taint_free_routes(proven.iter().cloned())
        .build();

    let mut benign = benign_core_requests();
    for p in lab.plugins.clone() {
        benign.push(request_for(&p, &p.benign_value));
    }

    for req in &benign {
        lab.reset_database();
        let dynamic = lab.server.handle_with(req, &dynamic_only);

        let static_before = fast.stats().static_hits;
        lab.reset_database();
        let fast_resp = lab.server.handle_with(req, &fast);
        let static_after = fast.stats().static_hits;

        assert!(!dynamic.blocked, "dynamic gate blocked benign request {req:?}");
        assert!(!fast_resp.blocked, "fast path blocked benign request {req:?}");
        assert_eq!(fast_resp.body, dynamic.body, "fast path changed the response for {req:?}");
        if static_after > static_before {
            // The short-circuit only fired on statically-proven routes —
            // where the dynamic gate allowed everything anyway (checked
            // above via !dynamic.blocked).
            assert!(proven.contains(&req.path), "static fast path fired off-route on {req:?}");
        }
    }
    let stats = fast.stats();
    assert!(stats.static_hits > 0, "the fast path never fired on benign core traffic");
    assert_eq!(
        stats.model_fast_hits + stats.static_hits + stats.full_checks,
        stats.queries,
        "path counters must partition checked queries"
    );
}

/// Attacks always fall through: exploit traffic targets flagged routes,
/// so the fast path forwards every query to the dynamic gate and the
/// protection outcome is identical to running Joza alone.
#[test]
fn attacks_always_fall_through_to_the_dynamic_gate() {
    let mut lab = build_lab();
    let proven = proven_routes(&lab);
    let dynamic_only = Joza::install(&lab.server.app, JozaConfig::optimized());
    let fast = Joza::installer(&lab.server.app, JozaConfig::optimized())
        .taint_free_routes(proven.iter().cloned())
        .build();

    for p in lab.plugins.clone().iter().chain(lab.cms_cases.clone().iter()) {
        let req = request_for(p, p.exploit.primary_payload());
        assert!(
            !proven.contains(&p.slug),
            "exploitable route {} must not be on the fast path",
            p.slug
        );

        lab.reset_database();
        let dynamic = lab.server.handle_with(&req, &dynamic_only);

        let before = fast.stats();
        lab.reset_database();
        let fast_resp = lab.server.handle_with(&req, &fast);
        let after = fast.stats();

        assert_eq!(after.static_hits, before.static_hits, "attack on {} hit the fast path", p.slug);
        assert!(after.full_checks > before.full_checks || fast_resp.queries.is_empty());
        assert_eq!(fast_resp.blocked, dynamic.blocked, "{}", p.slug);
        assert_eq!(fast_resp.body, dynamic.body, "{}", p.slug);
    }
}
