//! Property tests for the inferred query models (fast-path soundness).
//!
//! Two directions, matching the fast path's one-sided contract:
//!
//! * **No false structural anomalies.** Instantiating an inferred
//!   template's holes with a benign literal must always yield a query
//!   the sink's automaton accepts — otherwise benign traffic would be
//!   spuriously flagged as structurally anomalous (and lose the fast
//!   path it is entitled to).
//! * **No fast-pathed attacks.** A structural injection payload placed
//!   in a hole spreads over multiple SQL tokens, so the skeleton no
//!   longer matches: the lab's shipped exploit payloads must never be
//!   accepted by their target route's automaton.

use joza_lab::{build_lab, Exploit};
use joza_sast::{infer_source, EndpointModel};
use joza_sqlparse::template::TemplatePart;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Endpoint models for every routable endpoint of the lab, inferred once
/// (proptest re-runs each property body many times).
fn endpoint_models() -> &'static Vec<EndpointModel> {
    static MODELS: OnceLock<Vec<EndpointModel>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let lab = build_lab();
        let mut out: Vec<EndpointModel> =
            lab.server.app.plugins().map(|p| infer_source(&p.name, &p.source)).collect();
        out.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));
        out
    })
}

fn has_hole(parts: &[TemplatePart]) -> bool {
    parts.iter().any(|p| match p {
        TemplatePart::Hole => true,
        TemplatePart::Rep(body) => has_hole(body),
        TemplatePart::Lit(_) => false,
    })
}

proptest! {
    /// Benign integers are valid in every hole context (bare numeric
    /// concatenation and inside quoted literals alike), so every
    /// instantiation of every inferred template over the whole lab must
    /// be accepted by its own route's automaton.
    #[test]
    fn integer_instantiations_are_always_accepted(n in 0u64..1_000_000_000) {
        let value = n.to_string();
        for em in endpoint_models() {
            let model = em.compile();
            // A rejected template is deliberately absent from the
            // automaton; only fully-compiled routes promise acceptance.
            if model.compiled == 0 || model.rejected > 0 {
                continue;
            }
            for site in &em.sites {
                let Some(templates) = &site.templates else { continue };
                for t in templates {
                    let q = t.instantiate(&value);
                    prop_assert!(
                        model.accepts(&q),
                        "route {} rejected benign instantiation {q:?}",
                        em.endpoint
                    );
                }
            }
        }
    }

    /// Quoted-context holes accept arbitrary quote-free text: whatever
    /// the visitor types stays one string literal token.
    #[test]
    fn quote_free_strings_are_accepted_in_quoted_holes(s in "[a-zA-Z0-9 _.,-]{0,24}") {
        let src = r#"
            $n = $_GET['name'];
            $r = mysql_query("SELECT id FROM t WHERE name='" . $n . "' AND hidden=0");
        "#;
        let em = infer_source("quoted", src);
        let model = em.compile();
        prop_assert!(model.complete);
        let site = &em.sites[0];
        for t in site.templates.as_ref().expect("modeled site") {
            let q = t.instantiate(&s);
            prop_assert!(model.accepts(&q), "rejected benign quoted value {q:?}");
        }
    }

    /// A quote break-out deforms the skeleton and is never accepted,
    /// whatever benign text surrounds it.
    #[test]
    fn quote_breakouts_are_never_accepted(pre in "[a-z0-9]{0,10}", col in "[a-z]{1,6}") {
        let src = r#"
            $n = $_GET['name'];
            $r = mysql_query("SELECT id FROM t WHERE name='" . $n . "' AND hidden=0");
        "#;
        let em = infer_source("quoted", src);
        let model = em.compile();
        let payload = format!("{pre}' OR {col} LIKE '%");
        let site = &em.sites[0];
        for t in site.templates.as_ref().expect("modeled site") {
            let q = t.instantiate(&payload);
            prop_assert!(!model.accepts(&q), "break-out accepted: {q:?}");
        }
    }
}

/// Every exploit payload the lab ships, instantiated into every holed
/// template of its target route, is rejected by that route's automaton —
/// the fast path can never allow a shipped attack.
#[test]
fn lab_attack_payloads_never_match_the_automaton() {
    let lab = build_lab();
    let mut checked = 0usize;
    for p in lab.plugins.iter().chain(lab.cms_cases.iter()) {
        let em = infer_source(&p.slug, &p.source);
        let model = em.compile();
        if model.compiled == 0 {
            // The Drupal case study is unmodeled (⊤ site): no automaton,
            // no fast path to subvert.
            continue;
        }
        let payloads: Vec<&str> = match &p.exploit {
            Exploit::Leak { payload, .. } => vec![payload],
            Exploit::BooleanDiff { true_payload, false_payload } => {
                vec![true_payload, false_payload]
            }
            Exploit::TimingDiff { slow_payload, fast_payload, .. } => {
                vec![slow_payload, fast_payload]
            }
        };
        for site in &em.sites {
            let Some(templates) = &site.templates else { continue };
            for t in templates.iter().filter(|t| has_hole(&t.parts)) {
                for payload in &payloads {
                    let q = t.instantiate(payload);
                    assert!(
                        !model.accepts(&q),
                        "{}: exploit payload accepted by the automaton: {q:?}",
                        p.slug
                    );
                    checked += 1;
                }
            }
        }
    }
    // 15 union + 4 tautology + 2 CMS leaks at one payload each, plus
    // 17 boolean-blind + 14 timing-blind at two payloads each = 83.
    assert!(checked >= 80, "only {checked} payload instantiations exercised");
}
