//! The statically inferred query models against the full WP-SQLI-LAB.
//!
//! Three contracts:
//!
//! * **Completeness labels.** `app_query_models` must agree with the
//!   lab's ground-truth labels (`joza_lab::model_ground_truth`): every
//!   route is expected complete except the Drupal case study, whose
//!   `db_query` placeholder-array rewrite is not derivable statically.
//! * **Benign parity + fast path.** With models installed, benign
//!   traffic produces byte-identical responses to the model-off
//!   baseline, and at least half of the benign queries ride the
//!   skeleton fast path.
//! * **Attack parity.** Exploit traffic never takes the fast path (the
//!   payload deforms the skeleton), so blocking decisions are identical
//!   to the model-off baseline.

use joza_core::{Joza, JozaConfig};
use joza_lab::{build_lab, model_ground_truth, verify::request_for};
use joza_sast::app_query_models;
use joza_webapp::request::HttpRequest;

fn benign_core_requests() -> Vec<HttpRequest> {
    let mut reqs = vec![HttpRequest::get("index")];
    for p in 1..=5 {
        reqs.push(HttpRequest::get("single-post").param("p", &p.to_string()));
    }
    reqs.push(HttpRequest::get("search").param("s", "lorem"));
    reqs.push(
        HttpRequest::post("post-comment")
            .param("comment_post_ID", "2")
            .param("author", "alice")
            .param("comment", "nice post"),
    );
    reqs
}

#[test]
fn inferred_completeness_matches_ground_truth() {
    let lab = build_lab();
    let models = app_query_models(&lab.server.app);
    for (route, expected_complete) in model_ground_truth(&lab) {
        let m = models.get(&route).unwrap_or_else(|| panic!("no model for route {route}"));
        assert_eq!(
            m.complete, expected_complete,
            "route {route}: inferred complete={}, ground truth says {}",
            m.complete, expected_complete
        );
        if expected_complete {
            assert!(m.compiled > 0, "complete route {route} compiled no templates");
        }
    }
}

#[test]
fn benign_traffic_fast_paths_with_identical_responses() {
    let mut lab = build_lab();
    let models = app_query_models(&lab.server.app);
    let baseline = Joza::install(&lab.server.app, JozaConfig::optimized());
    let modeled = Joza::install_with_models(&lab.server.app, JozaConfig::optimized(), models);

    let mut reqs = benign_core_requests();
    for p in lab.plugins.clone() {
        reqs.push(request_for(&p, &p.benign_value));
    }

    for req in &reqs {
        lab.reset_database();
        let off = lab.server.handle_with(req, &baseline);

        lab.reset_database();
        let on = lab.server.handle_with(req, &modeled);

        assert!(!off.blocked, "model-off baseline blocked benign request {req:?}");
        assert!(!on.blocked, "model-on gate blocked benign request {req:?}");
        assert_eq!(on.body, off.body, "models changed the response for {req:?}");
    }

    let stats = modeled.stats();
    assert!(stats.queries > 0);
    assert!(
        stats.model_fast_hits * 2 >= stats.queries,
        "only {}/{} benign queries took the fast path",
        stats.model_fast_hits,
        stats.queries
    );
    assert_eq!(stats.attacks, 0);
}

#[test]
fn exploits_never_take_the_fast_path_and_verdicts_match_baseline() {
    let mut lab = build_lab();
    let models = app_query_models(&lab.server.app);
    let baseline = Joza::install(&lab.server.app, JozaConfig::optimized());
    let modeled = Joza::install_with_models(&lab.server.app, JozaConfig::optimized(), models);

    for p in lab.plugins.clone().iter().chain(lab.cms_cases.clone().iter()) {
        let req = request_for(p, p.exploit.primary_payload());

        lab.reset_database();
        let off = lab.server.handle_with(&req, &baseline);

        let fast_before = modeled.stats().model_fast_hits;
        lab.reset_database();
        let on = lab.server.handle_with(&req, &modeled);
        let fast_after = modeled.stats().model_fast_hits;

        assert_eq!(
            fast_after - fast_before,
            0,
            "exploit against {} rode the model fast path",
            p.slug
        );
        assert_eq!(on.blocked, off.blocked, "verdict delta on {}", p.slug);
        assert_eq!(on.body, off.body, "response delta on {}", p.slug);
    }
}
