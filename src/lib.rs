#![warn(missing_docs)]
//! # Joza: hybrid taint inference for defeating SQL injection attacks
//!
//! This is the facade crate of a from-scratch Rust reproduction of
//! *"Joza: Hybrid Taint Inference for Defeating Web Application SQL
//! Injection Attacks"* (DSN 2015). It re-exports every subsystem:
//!
//! * [`core`] — the hybrid taint-inference engine (the paper's contribution)
//! * [`nti`] / [`pti`] — the two inference components it combines
//! * [`sqlparse`] — SQL lexer/parser/critical-token analysis
//! * [`strmatch`] — approximate & multi-pattern string matching
//! * [`phpsim`] — PHP-subset interpreter + fragment extraction
//! * [`db`] — in-memory MySQL-subset engine
//! * [`webapp`] — simulated web-application framework
//! * [`lab`] — WP-SQLI-LAB testbed, SQLMap-style generator, Taintless
//! * [`sast`] — static taint analyzer + gate fast-path route proofs
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! system inventory and experiment index.
//!
//! # Quickstart
//!
//! ```
//! use joza::core::{Joza, JozaConfig};
//!
//! // Fragments would normally come from the application's source code.
//! let fragments = ["SELECT * FROM posts WHERE id=", " LIMIT 1", "id"];
//! let joza = Joza::builder()
//!     .fragments(fragments)
//!     .config(JozaConfig::default())
//!     .build();
//!
//! let mut session = joza.session();
//! session.capture_input("id", "7");
//! assert!(session.check("SELECT * FROM posts WHERE id=7 LIMIT 1").is_safe());
//!
//! session.capture_input("id", "7 UNION SELECT password FROM users");
//! assert!(!session
//!     .check("SELECT * FROM posts WHERE id=7 UNION SELECT password FROM users LIMIT 1")
//!     .is_safe());
//! ```

pub use joza_core as core;
pub use joza_db as db;
pub use joza_lab as lab;
pub use joza_nti as nti;
pub use joza_phpsim as phpsim;
pub use joza_pti as pti;
pub use joza_sast as sast;
pub use joza_sqlparse as sqlparse;
pub use joza_strmatch as strmatch;
pub use joza_webapp as webapp;
