//! `joza` — command-line front end for the hybrid taint-inference engine.
//!
//! ```text
//! joza extract <php-file-or-dir>...        # print the fragment vocabulary
//! joza check -f fragments.txt [-i VALUE]... <query>
//! joza audit -f fragments.txt              # PTI attack-surface audit
//! ```
//!
//! `extract` walks the given paths (recursing into directories), runs the
//! installer's fragment extraction over every `.php` file (any extension
//! is accepted for explicit file arguments), and prints one fragment per
//! line — the same vocabulary `Joza::install` would build.
//!
//! `check` loads a fragment file (one fragment per line, `\n`-escapes
//! honored), captures `-i` values as raw request inputs, and prints the
//! NTI/PTI/hybrid verdict for the query.
//!
//! `audit` reports which dangerous tokens the vocabulary exposes
//! (the paper's Table III) and the shortest — most combinable — fragments.

use joza::core::{Joza, JozaConfig};
use joza::phpsim::fragments::FragmentSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("extract") => cmd_extract(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("joza: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage:
  joza extract <php-file-or-dir>...
      Extract the PTI fragment vocabulary from application sources.

  joza check -f <fragments.txt> [-i <raw-input>]... <query>
      Analyze one query. Exit code: 0 safe, 1 attack detected.

  joza audit -f <fragments.txt>
      Report the vocabulary's attack surface (paper Table III).
";

fn cmd_extract(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("extract: no paths given".into());
    }
    let mut files = Vec::new();
    for arg in args {
        collect_sources(Path::new(arg), true, &mut files)?;
    }
    if files.is_empty() {
        return Err("extract: no source files found".into());
    }
    let mut set = FragmentSet::new();
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("extract: {}: {e}", file.display()))?;
        set.add_source(&src);
    }
    eprintln!("joza: {} fragments from {} files", set.len(), files.len());
    let mut frags: Vec<&str> = set.iter().collect();
    frags.sort_unstable();
    for f in frags {
        println!("{}", escape(f));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let (fragment_file, inputs, rest) = parse_flags(args)?;
    let fragment_file = fragment_file.ok_or("check: missing -f <fragments.txt>")?;
    let query = match rest.as_slice() {
        [q] => q.clone(),
        [] => return Err("check: missing <query>".into()),
        _ => return Err("check: expected exactly one query (quote it)".into()),
    };
    let fragments = load_fragments(&fragment_file)?;
    let joza = Joza::builder().fragments(&fragments).config(JozaConfig::optimized()).build();
    let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let verdict = joza.check_query(&refs, &query);
    println!(
        "nti: {}",
        match verdict.nti_attack() {
            Some(true) => "ATTACK",
            Some(false) => "safe",
            None => "disabled",
        }
    );
    println!(
        "pti: {}",
        match verdict.pti_attack() {
            Some(true) => "ATTACK",
            Some(false) => "safe",
            None => "disabled",
        }
    );
    if verdict.is_safe() {
        println!("verdict: safe");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("verdict: ATTACK (detected by {:?})", verdict.detector().expect("unsafe"));
        Ok(ExitCode::from(1))
    }
}

fn cmd_audit(args: &[String]) -> Result<ExitCode, String> {
    let (fragment_file, _, rest) = parse_flags(args)?;
    if !rest.is_empty() {
        return Err(format!("audit: unexpected arguments {rest:?}"));
    }
    let fragment_file = fragment_file.ok_or("audit: missing -f <fragments.txt>")?;
    let fragments = load_fragments(&fragment_file)?;
    println!("vocabulary: {} fragments", fragments.len());
    println!("\ndangerous tokens available to an attacker:");
    for needle in [
        "UNION", "AND", "OR", "SELECT", "CHAR", "#", "\"", "'", "`", "GROUP BY", "ORDER BY",
        "CAST", "WHERE 1",
    ] {
        if fragments.iter().any(|f| f.contains(needle)) {
            println!("  {needle}");
        }
    }
    let mut shortest: Vec<&String> = fragments.iter().collect();
    shortest.sort_by_key(|f| (f.len(), f.as_str()));
    println!("\n15 shortest (most combinable) fragments:");
    for f in shortest.iter().take(15) {
        println!("  {:?}", f);
    }
    Ok(ExitCode::SUCCESS)
}

/// Collects `.php` sources under `path`; explicit file arguments are
/// accepted regardless of extension.
fn collect_sources(path: &Path, explicit: bool, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if meta.is_file() {
        if explicit || path.extension().is_some_and(|e| e == "php") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let entries = std::fs::read_dir(path).map_err(|e| format!("{}: {e}", path.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", path.display()))?;
        collect_sources(&entry.path(), false, out)?;
    }
    Ok(())
}

/// Parsed common flags: fragment file, `-i` inputs, positional rest.
type ParsedFlags = (Option<PathBuf>, Vec<String>, Vec<String>);

fn parse_flags(args: &[String]) -> Result<ParsedFlags, String> {
    let mut fragment_file = None;
    let mut inputs = Vec::new();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-f" | "--fragments" => {
                let v = it.next().ok_or("missing value after -f")?;
                fragment_file = Some(PathBuf::from(v));
            }
            "-i" | "--input" => {
                let v = it.next().ok_or("missing value after -i")?;
                inputs.push(v.clone());
            }
            other => rest.push(other.to_string()),
        }
    }
    Ok((fragment_file, inputs, rest))
}

fn load_fragments(path: &Path) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(text.lines().filter(|l| !l.is_empty()).map(unescape).collect())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\t', "\\t")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}
