#!/usr/bin/env bash
# Full local CI gate: formatting, lints (warnings are errors), tests.
# Run from the repository root:  ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> CI green"
