#!/usr/bin/env bash
# Full local CI gate: formatting, lints (warnings are errors), tests.
# Run from the repository root:  ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The concurrency suite again, explicitly multi-threaded: the stress
# tests must hold when the harness itself runs them in parallel.
echo "==> cargo test -q --test concurrency -- --test-threads=4"
cargo test -q --test concurrency -- --test-threads=4

# Thread-scaling smoke: a tiny 2-thread run proving the sharded engine
# serves concurrently with verdicts identical to single-threaded (the
# binary asserts consistency and dies on any mismatch).
echo "==> scaling smoke (2 threads)"
cargo run --quiet --release -p joza-bench --bin scaling -- \
    --requests 24 --repeat 1 --threads 1,2 --out /tmp/joza_scaling_smoke.json

echo "==> CI green"
