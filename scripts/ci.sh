#!/usr/bin/env bash
# Full local CI gate: formatting, lints (warnings are errors), tests.
# Run from the repository root:  ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The concurrency suite again, explicitly multi-threaded: the stress
# tests must hold when the harness itself runs them in parallel.
echo "==> cargo test -q --test concurrency -- --test-threads=4"
cargo test -q --test concurrency -- --test-threads=4

# Differential kernel suite, explicitly: the bit-parallel NTI kernel must
# be bit-identical to Sellers-classic on distances, spans, and reports,
# and the SWAR byte-folding/classifier kernels must agree byte-for-byte
# with their scalar references (debug build, so debug assertions are
# live inside the kernels).
echo "==> differential kernel tests (strmatch myers + swar, nti kernel, lexer equivalence)"
cargo test -q -p joza-strmatch myers
cargo test -q -p joza-strmatch --test proptests myers
cargo test -q -p joza-strmatch swar
cargo test -q -p joza-strmatch --test proptests swar
cargo test -q -p joza-strmatch --test proptests to_lower
cargo test -q -p joza-nti --test proptests kernels
cargo test -q -p joza-sqlparse --test proptests lex_into
cargo test -q -p joza-sqlparse --test proptests sym_skeleton
cargo test -q --test alloc_free

# Thread-scaling smoke over the batch-first serving API: verdicts must be
# bit-identical to single-threaded at every thread count, the deploy-
# under-load pass must conserve every counter across the mid-run swaps,
# and 8 workers must reach >= 6x the single-thread checked-query rate
# (the pipe waits overlap; the binary dies if the sharded core
# serializes them).
echo "==> scaling smoke (8 threads, >= 6x gate)"
cargo run --quiet --release -p joza-bench --bin scaling -- \
    --requests 24 --repeat 1 --threads 1,8 --min-speedup 6 \
    --out /tmp/joza_scaling_smoke.json

# Live-serving smoke: Zipf traffic with attack bursts through check_batch
# while models are rolled out and back mid-run; the binary asserts every
# verdict against ground truth and counter conservation across both
# deploys.
echo "==> serve_live smoke"
cargo run --quiet --release -p joza-bench --bin serve_live -- \
    --requests 32 --threads 4

# Kernel-benchmark smoke: tiny iteration count; the binary asserts full
# Classic/BitParallel report identity over the lab corpus and both
# workloads before timing anything.
echo "==> nti_kernel smoke"
cargo run --quiet --release -p joza-bench --bin nti_kernel -- \
    --iters 2 --long-pairs 8 --out /tmp/joza_nti_kernel_smoke.json

# Query-model smoke: the binary asserts model completeness against the
# lab's ground-truth labels, zero verdict deltas model-on vs model-off
# over benign + exploit traffic, no fast-pathed attacks, and a >= 50%
# benign fast-path rate before timing anything.
echo "==> querymodel smoke"
cargo run --quiet --release -p joza-bench --bin querymodel -- \
    --requests 24 --repeat 1 --threads 1,2 --out /tmp/joza_querymodel_smoke.json

# Pipeline equivalence, explicitly: the deprecated QueryGate shim and the
# staged CheckPipeline must produce bit-identical verdicts, traces, and
# responses over the full lab corpus.
echo "==> cargo test -q --test pipeline_equivalence"
cargo test -q --test pipeline_equivalence

# Engine equivalence, explicitly: the bytecode VM and the tree-walking
# interpreter must produce bit-identical responses (body, queries,
# sql_error, blocked) and database state over the full lab corpus —
# benign, every exploit, and both second-order two-phase flows — plus the
# 404 and parse-error paths.
echo "==> cargo test -q -p joza-lab --test engine_differential"
cargo test -q -p joza-lab --test engine_differential

# Engine differential property test: seeded random phpsim programs
# (loops, compound assignment, indexed stores, host query calls,
# mid-program termination) diffed VM vs tree-walk on result, output, and
# the exact SQL sequence the host saw.
echo "==> cargo test -q -p joza-phpsim --test vm_differential"
cargo test -q -p joza-phpsim --test vm_differential

# Engine edge semantics: foreach snapshotting, break/continue depth,
# Terminated mid-expression, uninitialized reads, and string/number
# coercions pinned against both engines.
echo "==> cargo test -q -p joza-phpsim --test engine_edges"
cargo test -q -p joza-phpsim --test engine_edges

# Pipeline-bench smoke: asserts the path counters partition the checked
# queries before timing, exercises the per-stage breakdown writers, and
# enforces the single-thread gate-direct throughput floor (the ROADMAP
# 50k-checked-q/s target; the allocation-free hot path clears it with
# an order of magnitude of headroom, so a trip means a real regression).
echo "==> pipeline smoke (--min-qps 50000 single-thread gate-direct floor)"
cargo run --quiet --release -p joza-bench --bin pipeline -- \
    --requests 24 --repeat 1 --threads 1 --min-qps 50000 \
    --out /tmp/joza_pipeline_smoke.json

# Hardening smoke: the binary asserts >= 50/57 routes statically
# rewritten to prepared statements, a passing differential (bit-identical
# benign responses + DB state, every ungated exploit on rewritten routes
# neutralized), and no effective gated attacks before timing anything.
echo "==> harden smoke"
cargo run --quiet --release -p joza-bench --bin harden -- \
    --requests 24 --repeat 1 --threads 1,2 --out /tmp/joza_harden_smoke.json

# Second-order smoke: the binary asserts the detection floor — every
# labeled two-phase exploit (original + PTI-evading variant) classified
# second-order-reachable statically AND caught dynamically by the
# persistence-aware gate, with zero benign round trips blocked — before
# timing anything.
echo "==> second_order smoke"
cargo run --quiet --release -p joza-bench --bin second_order -- \
    --requests 24 --repeat 1 --out /tmp/joza_second_order_smoke.json

# VM-bench smoke: asserts every response bit-identical across engines on
# both the testbed corpus and the interpreter-bound render routes, runs a
# small soak with latency percentiles and query-count conservation, and
# enforces the ISSUE floor — the VM must serve the engine-bound render
# routes >= 3x faster end to end than the tree-walker.
echo "==> vm bench smoke (--min-speedup 3 render-route floor)"
cargo run --quiet --release -p joza-bench --bin vm -- \
    --requests 24 --repeat 1 --soak 200 --min-speedup 3 \
    --out /tmp/joza_vm_smoke.json

# Live-serving soak smoke: after the deploy demo, serve the corpus
# repeatedly and assert the verdict split is identical on every pass and
# the engine's query counter advances by exactly the corpus size per
# pass (steady-state drift check, small N for CI).
echo "==> serve_live soak smoke"
cargo run --quiet --release -p joza-bench --bin serve_live -- \
    --requests 48 --threads 4 --soak 400

# Deprecation containment: the legacy single-worker gate API (QueryGate /
# handle_gated / Joza::gate) may only appear in the files that define it
# (webapp's gate seam and server) and the two files allowed to keep using
# it: the core shim and the equivalence test. (clippy -D warnings already
# rejects in-tree deprecated calls; this also catches new
# allow(deprecated) escapes and fresh trait impls.)
echo "==> deprecated-API containment check"
violations=$(grep -rln --include='*.rs' \
    -e '\.gate()' -e 'allow(deprecated)' -e 'QueryGate' -e 'handle_gated' \
    crates src tests examples 2>/dev/null \
    | grep -v \
        -e '^crates/webapp/src/gate\.rs$' \
        -e '^crates/webapp/src/server\.rs$' \
        -e '^crates/webapp/src/lib\.rs$' \
        -e '^crates/core/src/shim\.rs$' \
        -e '^tests/pipeline_equivalence\.rs$' || true)
if [ -n "$violations" ]; then
    echo "legacy QueryGate API used outside its definition, the shim, and the equivalence test:" >&2
    echo "$violations" >&2
    exit 1
fi

echo "==> CI green"
