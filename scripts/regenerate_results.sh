#!/usr/bin/env bash
# Regenerates every table/figure/ablation of the paper's evaluation into
# results/. Security tables are deterministic; performance tables measure
# wall-clock (expect ±1 percentage point between runs).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
for bin in table1 table2 table3 table4 table7 ablation_threshold ablation_policy sast_report; do
    echo "== $bin =="
    cargo run --quiet --release -p joza-bench --bin "$bin" > "results/$bin.txt"
done
for bin in table5 table6 fig7 fig8 ablation_matcher; do
    echo "== $bin (timed) =="
    cargo run --quiet --release -p joza-bench --bin "$bin" > "results/$bin.txt"
done
echo "== scaling (timed) =="
cargo run --quiet --release -p joza-bench --bin scaling -- \
    --requests 64 --batch 4 --repeat 3 --threads 1,2,4,8 --min-speedup 6 \
    --out results/BENCH_scaling.json > results/scaling.txt
echo "== nti_kernel (timed) =="
cargo run --quiet --release -p joza-bench --bin nti_kernel -- \
    --out results/BENCH_nti_kernel.json > results/nti_kernel.txt
echo "== querymodel (timed) =="
cargo run --quiet --release -p joza-bench --bin querymodel -- \
    --out results/BENCH_querymodel.json > results/querymodel.txt
echo "== harden (timed) =="
cargo run --quiet --release -p joza-bench --bin harden -- \
    --out results/BENCH_harden.json > results/harden.txt
echo "done: $(ls results | wc -l) result files in results/"
