#!/usr/bin/env bash
# Regenerates every table/figure/ablation of the paper's evaluation into
# results/. Security tables are deterministic; performance tables measure
# wall-clock (expect ±1 percentage point between runs).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
# Timestamp marker laid down before any benchmark runs: every BENCH_*.json
# must end up strictly newer than this file.
run_stamp=$(mktemp)
trap 'rm -f "$run_stamp"' EXIT
for bin in table1 table2 table3 table4 table7 ablation_threshold ablation_policy sast_report; do
    echo "== $bin =="
    cargo run --quiet --release -p joza-bench --bin "$bin" > "results/$bin.txt"
done
for bin in table5 table6 fig7 fig8 ablation_matcher; do
    echo "== $bin (timed) =="
    cargo run --quiet --release -p joza-bench --bin "$bin" > "results/$bin.txt"
done
echo "== scaling (timed) =="
cargo run --quiet --release -p joza-bench --bin scaling -- \
    --requests 64 --batch 4 --repeat 3 --threads 1,2,4,8 --min-speedup 6 \
    --out results/BENCH_scaling.json > results/scaling.txt
echo "== nti_kernel (timed) =="
cargo run --quiet --release -p joza-bench --bin nti_kernel -- \
    --out results/BENCH_nti_kernel.json > results/nti_kernel.txt
echo "== querymodel (timed) =="
cargo run --quiet --release -p joza-bench --bin querymodel -- \
    --out results/BENCH_querymodel.json > results/querymodel.txt
echo "== harden (timed) =="
cargo run --quiet --release -p joza-bench --bin harden -- \
    --out results/BENCH_harden.json > results/harden.txt
echo "== second_order (timed) =="
cargo run --quiet --release -p joza-bench --bin second_order -- \
    --out results/BENCH_secondorder.json > results/second_order.txt
echo "== pipeline (timed) =="
cargo run --quiet --release -p joza-bench --bin pipeline -- \
    --requests 96 --repeat 3 --threads 1,4 \
    --out results/BENCH_pipeline.json > results/pipeline.txt
echo "== vm (timed) =="
cargo run --quiet --release -p joza-bench --bin vm -- \
    --min-speedup 3 \
    --out results/BENCH_vm.json > results/vm.txt

# Every machine-readable benchmark artifact this script is responsible
# for must actually have been (re)written by this run — a silently
# skipped writer (renamed bin, edited flag, early exit swallowed by a
# pipe) must fail the regeneration, not leave a stale or missing file.
expected_bench_json="BENCH_scaling.json BENCH_nti_kernel.json BENCH_querymodel.json \
BENCH_harden.json BENCH_pipeline.json BENCH_secondorder.json BENCH_vm.json"
missing=0
for f in $expected_bench_json; do
    if [ ! -s "results/$f" ]; then
        echo "FAIL: results/$f was not written (benchmark writer skipped?)" >&2
        missing=1
    elif [ ! "results/$f" -nt "$run_stamp" ]; then
        echo "FAIL: results/$f exists but was not refreshed by this run" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "FAIL: BENCH_*.json regeneration incomplete — see above" >&2
    exit 1
fi
echo "done: $(ls results | wc -l) result files in results/ (all $(echo "$expected_bench_json" | wc -w) BENCH_*.json refreshed)"
